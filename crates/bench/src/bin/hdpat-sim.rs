//! `hdpat-sim` — command-line driver for the wafer-scale GPU simulator.
//!
//! ```text
//! hdpat-sim list                          # benchmarks and policies
//! hdpat-sim run SPMV hdpat                # one simulation, full metrics
//! hdpat-sim run PR naive --scale unit --seed 7
//! hdpat-sim compare KM                    # every policy on one benchmark
//! hdpat-sim figure fig14                  # regenerate one paper figure
//! hdpat-sim figure all --jobs 4           # regenerate everything, 4 workers
//! hdpat-sim trace SPMV                    # workload-trace statistics
//! hdpat-sim trace SPMV --out t.json       # request-lifecycle trace (needs
//!                                         # the `trace` cargo feature)
//! hdpat-sim timeline SPMV --out t.csv     # epoch-sampled counter timeline
//!                                         # (needs the `telemetry` feature)
//! hdpat-sim heatmap SPMV --out h.csv      # per-tile activity heatmap
//! hdpat-sim regen-experiments             # rewrite EXPERIMENTS.md tables
//! hdpat-sim regen-experiments --check     # CI doc drift gate
//! hdpat-sim serve --socket /tmp/h.sock    # simulation daemon (PROTOCOL.md)
//! hdpat-sim emit-mix fig14 --out mix.ndj  # record the fig14 request mix
//! hdpat-sim replay mix.ndj --out ref.txt  # replay a mix (batch or --socket)
//! hdpat-sim regen-protocol --check        # PROTOCOL.md doc drift gate
//! ```
//!
//! `--jobs N` sets the sweep worker count (default: available parallelism).
//! Simulation points are deduplicated through a per-invocation run cache and
//! executed across the workers; `--no-cache` disables the deduplication.
//! Output is byte-identical for every `--jobs` value, including `--jobs 1`
//! (the serial path), and with or without the cache. `--progress` adds a
//! live completed/total + events/sec + ETA line on stderr during sweeps;
//! stdout stays byte-identical.
//!
//! `--cache-dir DIR` attaches the persistent content-addressed run cache
//! (DESIGN.md §14) to sweeps, `serve`, and `replay`, so identical
//! configurations are answered from disk across processes; `--cache-budget
//! N` caps the store at N bytes with LRU eviction. stdout stays
//! byte-identical with or without the disk cache.

use std::path::{Path, PathBuf};

use hdpat::experiments::{run_with_shards, DiskCache, RunConfig, SweepCtx};
use hdpat::policy::PolicyKind;
use hdpat::serve::{Daemon, DaemonConfig};
use wsg_bench::report::{emit, Table};
use wsg_bench::{figures, regen, serving};
use wsg_workloads::{BenchmarkId, Scale};

fn parse_benchmark(s: &str) -> Option<BenchmarkId> {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.info().abbr.eq_ignore_ascii_case(s))
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    PolicyKind::from_token(s)
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s.to_ascii_lowercase().as_str() {
        "unit" => Some(Scale::Unit),
        "bench" => Some(Scale::Bench),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  hdpat-sim list\n  hdpat-sim run <BENCH> <POLICY> [--scale unit|bench|full] [--seed N] [--shards N]\n  hdpat-sim compare <BENCH> [--scale ...] [--jobs N] [--shards N] [--no-cache] [--progress]\n  hdpat-sim figure <figNN|tabN|all> [--scale ...] [--jobs N] [--shards N] [--no-cache] [--progress] [--perf-out FILE]\n  hdpat-sim trace <BENCH> [--scale ...] [--seed N] [--out FILE] [--policy P]\n  hdpat-sim timeline <BENCH> --out FILE [--interval N] [--format csv|json|perfetto] [--policy P] [--scale ...] [--seed N]\n  hdpat-sim heatmap <BENCH> --out FILE [--interval N] [--policy P] [--scale ...] [--seed N]\n  hdpat-sim regen-experiments [--scale ...] [--jobs N] [--check] [--path FILE]\n  hdpat-sim serve (--socket PATH | --stdio) [--jobs N] [--cache-dir DIR] [--cache-budget BYTES] [--ops-log FILE] [--metrics-out FILE] [--metrics-interval SECS]\n  hdpat-sim replay <MIX> [--socket PATH] [--shutdown] [--out FILE] [--stats-out FILE] [--jobs N] [--cache-dir DIR] [--cache-budget BYTES]\n  hdpat-sim emit-mix fig14 [--scale ...] [--seed N] [--out FILE]\n  hdpat-sim regen-protocol [--check] [--path FILE]\n\nsweep commands also accept --cache-dir DIR [--cache-budget BYTES] for the\npersistent cross-process run cache (DESIGN.md \u{a7}14)."
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let scale = flag(&args, "--scale")
        .map(|s| parse_scale(&s).unwrap_or_else(|| usage()))
        .unwrap_or(Scale::Bench);
    let seed: u64 = flag(&args, "--seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42);
    let jobs = match flag(&args, "--jobs") {
        Some(j) => j.parse().unwrap_or_else(|_| usage()),
        None => wsg_sim::pool::default_jobs(),
    };
    // `--shards N` partitions each individual run into N tile-group shards
    // under the conservative-lookahead drive (DESIGN.md §15). Like --jobs,
    // it never changes a byte of output — `figure ... --shards 4` is cmp'd
    // against the serial golden in ci.sh.
    let shards: usize = match flag(&args, "--shards") {
        Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage()),
        None => 1,
    };
    // `--no-cache` disables run deduplication (every point simulates
    // fresh, like the pre-sweep serial harness); output is identical either
    // way, so this exists only for cache-speedup measurements.
    let ctx = if args.iter().any(|a| a == "--no-cache") {
        SweepCtx::without_cache(jobs)
    } else {
        SweepCtx::new(jobs)
    };
    let ctx = ctx.with_shards(shards);
    // `--progress` reports live sweep progress on stderr; the deterministic
    // stdout report is unaffected.
    let ctx = if args.iter().any(|a| a == "--progress") {
        ctx.with_progress()
    } else {
        ctx
    };
    // `--cache-dir` attaches the persistent content-addressed run cache so
    // repeated invocations answer from disk; like `--jobs` it never changes
    // a byte of stdout.
    let cache_dir = flag(&args, "--cache-dir").map(PathBuf::from);
    let cache_budget: Option<u64> =
        flag(&args, "--cache-budget").map(|s| s.parse().unwrap_or_else(|_| usage()));
    let ctx = match &cache_dir {
        Some(dir) => match DiskCache::open(dir, cache_budget) {
            Ok(disk) => ctx.with_disk_cache(disk),
            Err(e) => {
                eprintln!("cannot open run cache {}: {e}", dir.display());
                std::process::exit(2);
            }
        },
        None => ctx,
    };

    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => {
            let b = args
                .get(1)
                .and_then(|s| parse_benchmark(s))
                .unwrap_or_else(|| usage());
            let p = args
                .get(2)
                .and_then(|s| parse_policy(s))
                .unwrap_or_else(|| usage());
            cmd_run(b, p, scale, seed, shards);
        }
        "compare" => {
            let b = args
                .get(1)
                .and_then(|s| parse_benchmark(s))
                .unwrap_or_else(|| usage());
            cmd_compare(&ctx, b, scale, seed);
        }
        "figure" => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            let perf_out = flag(&args, "--perf-out");
            cmd_figure(&ctx, &name, scale, perf_out.as_deref());
        }
        "trace" => {
            // The benchmark is positional, but `--benchmark B` is accepted
            // too for symmetry with the flag-style options.
            let b = args
                .get(1)
                .filter(|s| !s.starts_with("--"))
                .cloned()
                .or_else(|| flag(&args, "--benchmark"))
                .as_deref()
                .and_then(parse_benchmark)
                .unwrap_or_else(|| usage());
            match flag(&args, "--out") {
                Some(out) => {
                    let p = flag(&args, "--policy")
                        .map(|s| parse_policy(&s).unwrap_or_else(|| usage()))
                        .unwrap_or_else(PolicyKind::hdpat);
                    cmd_trace_run(b, p, scale, seed, &out);
                }
                None => cmd_trace(b, scale, seed),
            }
        }
        "timeline" | "heatmap" => {
            let b = args
                .get(1)
                .filter(|s| !s.starts_with("--"))
                .cloned()
                .or_else(|| flag(&args, "--benchmark"))
                .as_deref()
                .and_then(parse_benchmark)
                .unwrap_or_else(|| usage());
            let p = flag(&args, "--policy")
                .map(|s| parse_policy(&s).unwrap_or_else(|| usage()))
                .unwrap_or_else(PolicyKind::hdpat);
            // One telemetry epoch per engine utilization window by default,
            // so timelines line up with the sampled-occupancy series.
            let interval: u64 = flag(&args, "--interval")
                .map(|s| s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage()))
                .unwrap_or(10_000);
            let out = flag(&args, "--out").unwrap_or_else(|| usage());
            if cmd == "timeline" {
                let format = flag(&args, "--format").unwrap_or_else(|| "csv".into());
                cmd_timeline(b, p, scale, seed, interval, &out, &format);
            } else {
                cmd_heatmap(b, p, scale, seed, interval, &out);
            }
        }
        "regen-experiments" => {
            let check = args.iter().any(|a| a == "--check");
            let path = flag(&args, "--path").unwrap_or_else(|| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md").into()
            });
            cmd_regen_experiments(&ctx, scale, &path, check);
        }
        "serve" => {
            let config = DaemonConfig {
                jobs,
                cache_dir,
                cache_budget,
                ops_log: flag(&args, "--ops-log").map(PathBuf::from),
                metrics_out: flag(&args, "--metrics-out").map(PathBuf::from),
                metrics_interval: flag(&args, "--metrics-interval")
                    .map(|s| s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage())),
            };
            let socket = flag(&args, "--socket");
            let stdio = args.iter().any(|a| a == "--stdio");
            cmd_serve(config, socket, stdio);
        }
        "replay" => {
            let mix_path = args
                .get(1)
                .filter(|s| !s.starts_with("--"))
                .unwrap_or_else(|| usage());
            let config = DaemonConfig {
                jobs,
                cache_dir,
                cache_budget,
                ..DaemonConfig::default()
            };
            cmd_replay(
                mix_path,
                flag(&args, "--socket").as_deref(),
                args.iter().any(|a| a == "--shutdown"),
                flag(&args, "--out").as_deref(),
                flag(&args, "--stats-out").as_deref(),
                config,
            );
        }
        "emit-mix" => {
            let name = args.get(1).cloned().unwrap_or_else(|| usage());
            cmd_emit_mix(&name, scale, seed, flag(&args, "--out").as_deref());
        }
        "regen-protocol" => {
            let check = args.iter().any(|a| a == "--check");
            let path = flag(&args, "--path").unwrap_or_else(|| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md").into()
            });
            cmd_regen_protocol(&path, check);
        }
        _ => usage(),
    }
}

fn cmd_list() {
    let mut t = Table::new(vec!["benchmark", "suite", "pattern"]);
    for b in BenchmarkId::all() {
        let i = b.info();
        t.row(vec![
            i.abbr.to_string(),
            i.suite.to_string(),
            i.pattern.to_string(),
        ]);
    }
    emit("Benchmarks", "Table II workloads.", &t);
    let mut t = Table::new(vec!["policy", "description"]);
    for (n, p) in PolicyKind::catalog() {
        t.row(vec![n.to_string(), p.name().to_string()]);
    }
    emit(
        "Policies",
        "Translation policies (paper name in the right column).",
        &t,
    );
}

fn cmd_run(b: BenchmarkId, p: PolicyKind, scale: Scale, seed: u64, shards: usize) {
    let m = run_with_shards(&RunConfig::new(b, scale, p).with_seed(seed), shards);
    println!("{b} under {p} (seed {seed}):");
    println!("  execution time      : {} cycles", m.total_cycles);
    println!("  memory ops          : {}", m.ops_completed);
    println!(
        "  translations        : {} local, {} remote (+{} coalesced)",
        m.local_translations, m.remote_requests, m.remote_coalesced
    );
    println!("  IOMMU walks         : {}", m.iommu_walks);
    println!("  IOMMU latency       : {}", m.iommu_latency);
    println!("  resolution          : {}", m.resolution);
    println!("  mean remote RTT     : {:.0} cycles", m.remote_rtt.mean());
    println!("  peak IOMMU backlog  : {}", m.iommu_buffer.peak());
    println!(
        "  prefetch accuracy   : {:.1}%",
        m.prefetch_accuracy() * 100.0
    );
    println!(
        "  NoC traffic         : {} bytes, {} packets",
        m.noc_bytes, m.noc_packets
    );
    println!(
        "  GPM imbalance       : {:.2} (max/mean finish)",
        m.gpm_imbalance()
    );
}

fn cmd_compare(ctx: &SweepCtx, b: BenchmarkId, scale: Scale, seed: u64) {
    let points: Vec<RunConfig> = PolicyKind::catalog()
        .into_iter()
        .map(|(_, p)| RunConfig::new(b, scale, p).with_seed(seed))
        .collect();
    let results = ctx.sweep(&points);
    let base = &results[0]; // `naive` is the first catalog entry.
    let mut t = Table::new(vec![
        "policy",
        "cycles",
        "speedup",
        "iommu-walks",
        "offload",
    ]);
    for ((n, _), m) in PolicyKind::catalog().into_iter().zip(&results) {
        t.row(vec![
            n.to_string(),
            m.total_cycles.to_string(),
            format!("{:.2}", m.speedup_vs(base)),
            m.iommu_walks.to_string(),
            format!("{:.1}%", m.offload_fraction() * 100.0),
        ]);
    }
    emit(
        &format!("compare {b}"),
        "All policies on one benchmark, same workload and seed.",
        &t,
    );
}

/// Prints static statistics of a generated workload trace: footprint,
/// operation mix, locality, and remote fraction under block placement with
/// round-robin dispatch.
fn cmd_trace(b: BenchmarkId, scale: Scale, seed: u64) {
    use wsg_gpu::AddressSpace;
    let gpms = 48u32;
    let mut space = AddressSpace::new(wsg_xlat::PageSize::Size4K, gpms);
    let wgs = wsg_workloads::generate(b, scale, &mut space, seed);
    let ps = space.page_size();

    let mut ops = 0u64;
    let mut reads = 0u64;
    let mut remote = 0u64;
    let mut pages = std::collections::HashSet::new();
    let mut near = 0u64;
    let mut pairs = 0u64;
    for (i, wg) in wgs.iter().enumerate() {
        let gpm = (i as u32) % gpms;
        let mut last: Option<u64> = None;
        for op in &wg.ops {
            ops += 1;
            if op.is_read {
                reads += 1;
            }
            let vpn = ps.vpn_of(op.vaddr);
            pages.insert(vpn.0);
            if space.home_gpm(vpn) != Some(gpm) {
                remote += 1;
            }
            if let Some(prev) = last {
                pairs += 1;
                if prev.abs_diff(vpn.0) <= 4 {
                    near += 1;
                }
            }
            last = Some(vpn.0);
        }
    }
    let info = b.info();
    println!("{b} — {} ({})", info.name, info.suite);
    println!("  pattern          : {}", info.pattern);
    println!("  workgroups       : {}", wgs.len());
    println!(
        "  memory ops       : {ops} ({:.0}% reads)",
        reads as f64 / ops as f64 * 100.0
    );
    println!("  distinct pages   : {}", pages.len());
    println!(
        "  remote ops       : {:.1}% (block placement, round-robin dispatch)",
        remote as f64 / ops as f64 * 100.0
    );
    println!(
        "  spatial locality : {:.1}% of consecutive ops within 4 pages",
        near as f64 / pairs.max(1) as f64 * 100.0
    );
}

/// Runs one traced simulation, writes the request lifecycle as Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`), and prints
/// the per-stage latency table as CSV on stdout.
#[cfg(feature = "trace")]
fn cmd_trace_run(b: BenchmarkId, p: PolicyKind, scale: Scale, seed: u64, out: &str) {
    let (m, sink) = hdpat::experiments::run_traced(&RunConfig::new(b, scale, p).with_seed(seed));
    if let Err(e) = std::fs::write(out, sink.to_chrome_json()) {
        eprintln!("trace: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{}", sink.stage_csv());
    eprintln!(
        "[trace] {b} under {p} (seed {seed}): {} events over {} cycles -> {out}",
        sink.len(),
        m.total_cycles
    );
}

/// Without the feature there is no tracing infrastructure to run; fail
/// loudly rather than silently printing workload statistics.
#[cfg(not(feature = "trace"))]
fn cmd_trace_run(_b: BenchmarkId, _p: PolicyKind, _scale: Scale, _seed: u64, _out: &str) {
    eprintln!(
        "trace --out needs the `trace` feature; rebuild with \
         `cargo run --release --features trace --bin hdpat-sim -- trace ...`"
    );
    std::process::exit(2);
}

/// Runs one telemetry-instrumented simulation and writes the epoch-sampled
/// counter timeline to `out`. `--format csv` (default) is the long-form
/// `name,site,tile_x,tile_y,t,value` table; `json` is the structured
/// registry dump; `perfetto` is a Chrome trace-event document with one
/// `"ph":"C"` counter track per registered series — and, when the `trace`
/// feature is also compiled in, the request-lifecycle spans merged onto the
/// same simulated clock.
#[cfg(feature = "telemetry")]
fn cmd_timeline(
    b: BenchmarkId,
    p: PolicyKind,
    scale: Scale,
    seed: u64,
    interval: u64,
    out: &str,
    format: &str,
) {
    let cfg = RunConfig::new(b, scale, p).with_seed(seed);
    let (metrics, body) = match format {
        "csv" | "json" => {
            let (m, sink) = hdpat::experiments::run_telemetry(&cfg, interval);
            let body = if format == "csv" {
                sink.to_csv()
            } else {
                sink.to_json()
            };
            (m, body)
        }
        "perfetto" => perfetto_timeline(&cfg, interval),
        _ => {
            eprintln!("timeline: unknown format `{format}`; use csv, json, or perfetto");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::write(out, &body) {
        eprintln!("timeline: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "[timeline] {b} under {p} (seed {seed}): {} cycles sampled every {interval} -> {out}",
        metrics.total_cycles
    );
}

/// With both observability features the Perfetto document carries lifecycle
/// spans and counter tracks on one shared clock.
#[cfg(all(feature = "telemetry", feature = "trace"))]
fn perfetto_timeline(cfg: &RunConfig, interval: u64) -> (hdpat::metrics::Metrics, String) {
    let (m, tel, trc) = hdpat::experiments::run_telemetry_traced(cfg, interval);
    (m, tel.merge_chrome_json(&trc.to_chrome_json()))
}

/// Telemetry-only builds still get a loadable document, just without spans.
#[cfg(all(feature = "telemetry", not(feature = "trace")))]
fn perfetto_timeline(cfg: &RunConfig, interval: u64) -> (hdpat::metrics::Metrics, String) {
    let (m, tel) = hdpat::experiments::run_telemetry(cfg, interval);
    (m, tel.to_perfetto_json())
}

/// Runs one telemetry-instrumented simulation and writes the per-tile
/// activity heatmap (`metric,x,y,value` CSV, whole-run totals) to `out`.
#[cfg(feature = "telemetry")]
fn cmd_heatmap(b: BenchmarkId, p: PolicyKind, scale: Scale, seed: u64, interval: u64, out: &str) {
    let cfg = RunConfig::new(b, scale, p).with_seed(seed);
    let (metrics, sink) = hdpat::experiments::run_telemetry(&cfg, interval);
    let Some(hm) = sink.heatmap() else {
        eprintln!("heatmap: simulation registered no spatial grid");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::write(out, hm.to_csv()) {
        eprintln!("heatmap: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "[heatmap] {b} under {p} (seed {seed}): {}x{} tiles over {} cycles -> {out}",
        hm.width, hm.height, metrics.total_cycles
    );
}

/// Without the feature there is no telemetry infrastructure; fail loudly.
#[cfg(not(feature = "telemetry"))]
fn cmd_timeline(
    _b: BenchmarkId,
    _p: PolicyKind,
    _scale: Scale,
    _seed: u64,
    _interval: u64,
    _out: &str,
    _format: &str,
) {
    eprintln!(
        "timeline needs the `telemetry` feature; rebuild with \
         `cargo run --release --features telemetry --bin hdpat-sim -- timeline ...`"
    );
    std::process::exit(2);
}

/// Without the feature there is no telemetry infrastructure; fail loudly.
#[cfg(not(feature = "telemetry"))]
fn cmd_heatmap(
    _b: BenchmarkId,
    _p: PolicyKind,
    _scale: Scale,
    _seed: u64,
    _interval: u64,
    _out: &str,
) {
    eprintln!(
        "heatmap needs the `telemetry` feature; rebuild with \
         `cargo run --release --features telemetry --bin hdpat-sim -- heatmap ...`"
    );
    std::process::exit(2);
}

/// The end-of-sweep stderr accounting line. The disk-hit clause appears
/// only when `--cache-dir` attached a persistent cache, so the line is
/// unchanged for existing invocations.
fn sweep_summary(ctx: &SweepCtx) -> String {
    let (hits, misses) = ctx.cache_stats();
    let disk = match ctx.disk_cache() {
        Some(_) => format!(", {} disk hit(s)", ctx.disk_hits()),
        None => String::new(),
    };
    // The shard clause appears only for --shards > 1, so the line is
    // unchanged (and grep-stable) for existing invocations.
    let sharding = if ctx.shards() > 1 {
        format!(", {} shard(s)/run", ctx.shards())
    } else {
        String::new()
    };
    format!(
        "[sweep] {misses} simulation(s) executed, {hits} cache hit(s){disk}, {} worker(s){sharding}",
        ctx.jobs()
    )
}

type FigureFn<'a> = Box<dyn Fn() -> Table + 'a>;

fn cmd_figure(ctx: &SweepCtx, name: &str, scale: Scale, perf_out: Option<&str>) {
    // lint:allow(wallclock): host-side throughput measurement for the
    // `--perf-out` artifact; the deterministic figure text on stdout never
    // depends on it.
    let wall_start = std::time::Instant::now();
    let all: Vec<(&str, FigureFn)> = vec![
        ("fig02", Box::new(|| figures::fig02_headroom(ctx, scale))),
        (
            "fig03",
            Box::new(|| figures::fig03_latency_breakdown(ctx, scale)),
        ),
        (
            "fig04",
            Box::new(|| figures::fig04_buffer_pressure(ctx, scale)),
        ),
        (
            "fig05",
            Box::new(|| figures::fig05_position_imbalance(ctx, scale)),
        ),
        (
            "fig06",
            Box::new(|| figures::fig06_translation_counts(ctx, scale)),
        ),
        (
            "fig07",
            Box::new(|| figures::fig07_reuse_distance(ctx, scale)),
        ),
        (
            "fig08",
            Box::new(|| figures::fig08_spatial_locality(ctx, scale)),
        ),
        ("fig13", Box::new(|| figures::fig13_size_invariance(ctx))),
        ("fig14", Box::new(|| figures::fig14_overall(ctx, scale))),
        ("fig15", Box::new(|| figures::fig15_ablation(ctx, scale))),
        ("fig16", Box::new(|| figures::fig16_breakdown(ctx, scale))),
        (
            "fig17",
            Box::new(|| figures::fig17_response_time(ctx, scale)),
        ),
        (
            "fig18",
            Box::new(|| figures::fig18_prefetch_granularity(ctx, scale)),
        ),
        (
            "fig19",
            Box::new(|| figures::fig19_redir_vs_tlb(ctx, scale)),
        ),
        ("fig20", Box::new(|| figures::fig20_page_size(ctx, scale))),
        ("fig21", Box::new(|| figures::fig21_gpu_presets(ctx, scale))),
        ("fig22", Box::new(|| figures::fig22_wafer_7x12(ctx, scale))),
        ("tab1", Box::new(figures::tab1_config)),
        ("tab2", Box::new(figures::tab2_workloads)),
        ("tab3", Box::new(figures::tab3_area_power)),
    ];
    let mut matched = false;
    for (n, f) in &all {
        if name == "all" || name.eq_ignore_ascii_case(n) {
            matched = true;
            emit(n, "", &f());
        }
    }
    if !matched {
        eprintln!("unknown figure `{name}`; try fig02..fig22, tab1..tab3, or `all`");
        std::process::exit(2);
    }
    let (hits, misses) = ctx.cache_stats();
    eprintln!("{}", sweep_summary(ctx));
    if let Some(path) = perf_out {
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let total_events = ctx.events_executed();
        let events_per_sec = if wall_seconds > 0.0 {
            total_events as f64 / wall_seconds
        } else {
            0.0
        };
        // Perf-artifact schema v2 (DESIGN.md §16): a version stamp first,
        // then the run identity (figure / jobs / shards) always present, so
        // trajectory tooling never has to infer the drive shape from which
        // keys happen to exist.
        let json = format!(
            "{{\n  \"schema\": 2,\n  \"figure\": \"{name}\",\n  \"jobs\": {jobs},\n  \
             \"shards\": {shards},\n  \"wall_seconds\": {wall_seconds:.3},\n  \
             \"total_events\": {total_events},\n  \"events_per_sec\": {events_per_sec:.0},\n  \
             \"simulations\": {misses},\n  \"cache_hits\": {hits}\n}}\n",
            jobs = ctx.jobs(),
            shards = ctx.shards()
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("figure --perf-out: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("[perf] wrote {path}");
    }
}

fn cmd_regen_experiments(ctx: &SweepCtx, scale: Scale, path: &str, check: bool) {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("regen-experiments: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let blocks = regen::blocks(ctx, scale);
    let fresh = match regen::apply(&doc, &blocks) {
        Ok(fresh) => fresh,
        Err(e) => {
            eprintln!("regen-experiments: {path}: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("{}", sweep_summary(ctx));
    if check {
        if fresh == doc {
            println!("regen-experiments --check: {path} is up to date");
        } else {
            eprintln!(
                "regen-experiments --check: measured tables in {path} are stale; \
                 run `hdpat-sim regen-experiments` and commit the result"
            );
            std::process::exit(1);
        }
    } else if fresh == doc {
        println!("regen-experiments: {path} already up to date");
    } else if let Err(e) = std::fs::write(path, &fresh) {
        eprintln!("regen-experiments: cannot write {path}: {e}");
        std::process::exit(2);
    } else {
        println!("regen-experiments: rewrote measured tables in {path}");
    }
}

/// Runs the simulation daemon until a client sends `{"op":"shutdown"}`.
/// `--socket PATH` listens on a Unix socket; `--stdio` serves one
/// connection over stdin/stdout (scripting and tests).
fn cmd_serve(config: DaemonConfig, socket: Option<String>, stdio: bool) {
    let daemon = match Daemon::new(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: cannot start daemon: {e}");
            std::process::exit(2);
        }
    };
    if stdio {
        eprintln!(
            "[serve] reading requests from stdin, {} worker(s)",
            daemon.jobs()
        );
        daemon.serve_connection(std::io::stdin().lock(), std::io::stdout());
    } else {
        let Some(path) = socket else { usage() };
        eprintln!("[serve] listening on {path}, {} worker(s)", daemon.jobs());
        if let Err(e) = daemon.serve_unix(Path::new(&path)) {
            eprintln!("serve: {path}: {e}");
            std::process::exit(2);
        }
    }
    daemon.join();
    eprintln!("[serve] drained, exiting");
}

/// Replays a recorded request mix — in-process by default (boots a daemon,
/// streams the mix through one connection), or against a running daemon
/// with `--socket`. Writes the deterministic response digest to `--out`
/// (stdout otherwise) and hit-rate/latency statistics to `--stats-out`.
fn cmd_replay(
    mix_path: &str,
    socket: Option<&str>,
    shutdown: bool,
    out: Option<&str>,
    stats_out: Option<&str>,
    config: DaemonConfig,
) {
    let mix = match std::fs::read_to_string(mix_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("replay: cannot read {mix_path}: {e}");
            std::process::exit(2);
        }
    };
    // lint:allow(wallclock): host-side latency measurement for the
    // `--stats-out` artifact; the deterministic digest never depends on it.
    let wall_start = std::time::Instant::now();
    let timed = match socket {
        Some(path) => replay_over_socket(&mix, path, shutdown),
        None => serving::replay_batch_timed(&mix, config),
    };
    let timed = match timed {
        Ok(timed) => timed,
        Err(e) => {
            eprintln!("replay: {e}");
            std::process::exit(2);
        }
    };
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let lines: Vec<String> = timed.iter().map(|(line, _)| line.clone()).collect();
    let (artifact, stats) = serving::digest(&lines);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &artifact) {
                eprintln!("replay: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => print!("{artifact}"),
    }
    if let Some(path) = stats_out {
        if let Err(e) = std::fs::write(path, stats.to_json(wall_seconds)) {
            eprintln!("replay: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    eprintln!(
        "[replay] {} result(s) in {:.2}s: {} simulated, {} memory, {} disk; {} error(s)",
        stats.results, wall_seconds, stats.simulated, stats.memory, stats.disk, stats.errors
    );
    // Client-observed latency table (diagnostic, stderr only — the digest
    // above is the deterministic artifact). Socket replays stamp each
    // response on arrival; batch replays attribute the total drain time.
    eprint!("{}", serving::latency_report(&timed));
}

#[cfg(unix)]
fn replay_over_socket(
    mix: &str,
    path: &str,
    shutdown: bool,
) -> std::io::Result<Vec<serving::TimedLine>> {
    serving::replay_socket_timed(mix, Path::new(path), shutdown)
}

#[cfg(not(unix))]
fn replay_over_socket(
    _mix: &str,
    _path: &str,
    _shutdown: bool,
) -> std::io::Result<Vec<serving::TimedLine>> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "replay --socket needs Unix domain sockets; use batch mode",
    ))
}

/// Writes a recorded request mix (newline-delimited `submit` requests) for
/// `hdpat-sim replay`. `fig14` is the full overall-speedup sweep: every
/// Table II benchmark under the baseline and the four headline policies.
fn cmd_emit_mix(name: &str, scale: Scale, seed: u64, out: Option<&str>) {
    let mix = match name {
        "fig14" => serving::fig14_mix(scale, seed),
        _ => {
            eprintln!("emit-mix: unknown mix `{name}`; try fig14");
            std::process::exit(2);
        }
    };
    let requests = mix.lines().count();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &mix) {
                eprintln!("emit-mix: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("[emit-mix] {requests} request(s) -> {path}");
        }
        None => print!("{mix}"),
    }
}

/// Regenerates the worked protocol examples in PROTOCOL.md from the actual
/// wire builders (`hdpat::serve::proto::protocol_examples`), so the
/// documented lines can never drift from what the daemon emits. `--check`
/// is the CI drift gate.
fn cmd_regen_protocol(path: &str, check: bool) {
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("regen-protocol: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let body = hdpat::serve::proto::protocol_examples();
    let fresh = match regen::splice(&doc, "protocol-examples", &body) {
        Ok(fresh) => fresh,
        Err(e) => {
            eprintln!("regen-protocol: {path}: {e}");
            std::process::exit(2);
        }
    };
    if check {
        if fresh == doc {
            println!("regen-protocol --check: {path} is up to date");
        } else {
            eprintln!(
                "regen-protocol --check: protocol examples in {path} are stale; \
                 run `hdpat-sim regen-protocol` and commit the result"
            );
            std::process::exit(1);
        }
    } else if fresh == doc {
        println!("regen-protocol: {path} already up to date");
    } else if let Err(e) = std::fs::write(path, &fresh) {
        eprintln!("regen-protocol: cannot write {path}: {e}");
        std::process::exit(2);
    } else {
        println!("regen-protocol: rewrote protocol examples in {path}");
    }
}
