//! One function per paper table/figure. Each returns a [`Table`] whose rows
//! mirror what the paper plots, so bench targets print them and integration
//! tests assert on their shape.
//!
//! Every figure takes a [`SweepCtx`] and submits its simulation points as
//! one batch through [`SweepCtx::sweep`]: unique points run across the
//! context's worker pool, duplicates (most prominently the Naive baseline,
//! which a dozen figures normalize against) are simulated once per context,
//! and results come back in input order — so a figure's table is
//! byte-identical whatever the `--jobs` value and whatever ran before it on
//! the same context (`tests/sweep_determinism.rs`).

use hdpat::experiments::{RunConfig, SweepCtx};
use hdpat::policy::{HdpatConfig, PolicyKind};
use hdpat::Metrics;
use wsg_gpu::{GpuPreset, IommuConfig, SystemConfig, WaferLayout};
use wsg_workloads::{BenchmarkId, Scale};
use wsg_xlat::PageSize;

use crate::report::{gmean_cell, pct, ratio, Table};

/// Fig 2: performance headroom of idealized IOMMUs (1-cycle / 16-walker and
/// 500-cycle / 4096-walker) over the baseline.
pub fn fig02_headroom(ctx: &SweepCtx, scale: Scale) -> Table {
    let lat_sys = SystemConfig {
        iommu: IommuConfig::ideal_latency(),
        ..SystemConfig::paper_baseline()
    };
    let par_sys = SystemConfig {
        iommu: IommuConfig::ideal_parallelism(),
        ..SystemConfig::paper_baseline()
    };
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            [
                RunConfig::new(b, scale, PolicyKind::Naive),
                RunConfig::new(b, scale, PolicyKind::Naive).with_system(lat_sys.clone()),
                RunConfig::new(b, scale, PolicyKind::Naive).with_system(par_sys.clone()),
            ]
        })
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "ideal-latency", "ideal-parallelism"]);
    let mut lats = Vec::new();
    let mut pars = Vec::new();
    for (b, chunk) in BenchmarkId::all().into_iter().zip(results.chunks(3)) {
        let (base, lat, par) = (&chunk[0], &chunk[1], &chunk[2]);
        let sl = lat.speedup_vs(base);
        let sp = par.speedup_vs(base);
        lats.push(sl);
        pars.push(sp);
        t.row(vec![b.to_string(), ratio(sl), ratio(sp)]);
    }
    t.row(vec!["GMEAN".into(), gmean_cell(&lats), gmean_cell(&pars)]);
    t
}

/// Fig 3: average latency breakdown per IOMMU translation request for SPMV
/// (pre-queue wait / PTW-queue wait / walk).
pub fn fig03_latency_breakdown(ctx: &SweepCtx, scale: Scale) -> Table {
    let m = ctx.run(&RunConfig::new(BenchmarkId::Spmv, scale, PolicyKind::Naive));
    let mut t = Table::new(vec!["component", "total-cycles", "share"]);
    for (name, value, share) in m.iommu_latency.iter() {
        t.row(vec![name.to_string(), value.to_string(), pct(share)]);
    }
    t
}

/// Fig 4: IOMMU buffer pressure over time, MCM 4-GPM vs 48-GPM wafer, for
/// SPMV. One row per time window with the max occupancy observed.
pub fn fig04_buffer_pressure(ctx: &SweepCtx, scale: Scale) -> Table {
    let mcm_sys = SystemConfig {
        layout: WaferLayout::mcm_4gpm(),
        ..SystemConfig::paper_baseline()
    };
    let results = ctx.sweep(&[
        RunConfig::new(BenchmarkId::Spmv, scale, PolicyKind::Naive),
        RunConfig::new(BenchmarkId::Spmv, scale, PolicyKind::Naive).with_system(mcm_sys),
    ]);
    let (wafer, mcm) = (&results[0], &results[1]);
    let mut t = Table::new(vec![
        "window-start",
        "mcm-4gpm-occupancy",
        "wafer-48gpm-occupancy",
    ]);
    let mcm_w: Vec<u64> = mcm.iommu_buffer.windows().map(|w| w.max).collect();
    let wafer_w: Vec<u64> = wafer.iommu_buffer.windows().map(|w| w.max).collect();
    let width = wafer.iommu_buffer.window_width();
    for i in 0..wafer_w.len().max(mcm_w.len()) {
        t.row(vec![
            (i as u64 * width).to_string(),
            mcm_w.get(i).copied().unwrap_or(0).to_string(),
            wafer_w.get(i).copied().unwrap_or(0).to_string(),
        ]);
    }
    t
}

/// Fig 5: GPM execution time by concentric ring (distance from the CPU
/// tile) for SPMV and MM — central GPMs finish sooner.
pub fn fig05_position_imbalance(ctx: &SweepCtx, scale: Scale) -> Table {
    let layout = WaferLayout::paper_7x7();
    let results = ctx.sweep(&[
        RunConfig::new(BenchmarkId::Spmv, scale, PolicyKind::Naive),
        RunConfig::new(BenchmarkId::Mm, scale, PolicyKind::Naive),
    ]);
    let (spmv, mm) = (&results[0], &results[1]);
    let ring_mean = |m: &Metrics, ring: u32| -> f64 {
        let ids = layout.ring_gpms(ring);
        let sum: u64 = ids.iter().map(|&id| m.gpm_finish[id as usize]).sum();
        sum as f64 / ids.len() as f64
    };
    let mut t = Table::new(vec!["ring", "spmv-mean-finish", "mm-mean-finish"]);
    for ring in 1..=layout.max_layer() {
        t.row(vec![
            ring.to_string(),
            format!("{:.0}", ring_mean(spmv, ring)),
            format!("{:.0}", ring_mean(mm, ring)),
        ]);
    }
    t
}

/// Fig 6: distribution of per-VPN IOMMU translation counts. For each
/// benchmark: distinct pages seen at the IOMMU and the fraction translated
/// once / 2-4 times / 5+ times.
pub fn fig06_translation_counts(ctx: &SweepCtx, scale: Scale) -> Table {
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .map(|b| RunConfig::new(b, scale, PolicyKind::Naive))
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "pages", "x1", "x2-4", "x5+"]);
    for (b, m) in BenchmarkId::all().into_iter().zip(&results) {
        let h = m.translation_count_histogram();
        let total = h.count().max(1);
        let mut once = 0u64;
        let mut few = 0u64;
        let mut many = 0u64;
        for (lo, c) in h.iter() {
            if lo <= 1 {
                once += c;
            } else if lo <= 4 {
                few += c;
            } else {
                many += c;
            }
        }
        t.row(vec![
            b.to_string(),
            h.count().to_string(),
            pct(once as f64 / total as f64),
            pct(few as f64 / total as f64),
            pct(many as f64 / total as f64),
        ]);
    }
    t
}

/// Fig 7: reuse-distance distribution between repeated IOMMU translations
/// for the benchmarks the paper highlights (BT, FWT, MT, PR).
pub fn fig07_reuse_distance(ctx: &SweepCtx, scale: Scale) -> Table {
    let benches = [
        BenchmarkId::Bt,
        BenchmarkId::Fwt,
        BenchmarkId::Mt,
        BenchmarkId::Pr,
    ];
    let points: Vec<RunConfig> = benches
        .into_iter()
        .map(|b| RunConfig::new(b, scale, PolicyKind::Naive))
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "repeats", "<=64", "65-4096", ">4096", "max"]);
    for (b, m) in benches.into_iter().zip(&results) {
        let h = m.iommu_reuse.reuse_histogram();
        let total = h.count().max(1);
        let (mut small, mut mid, mut large) = (0u64, 0u64, 0u64);
        for (lo, c) in h.iter() {
            if lo <= 64 {
                small += c;
            } else if lo <= 4096 {
                mid += c;
            } else {
                large += c;
            }
        }
        t.row(vec![
            b.to_string(),
            h.count().to_string(),
            pct(small as f64 / total as f64),
            pct(mid as f64 / total as f64),
            pct(large as f64 / total as f64),
            h.max().to_string(),
        ]);
    }
    t
}

/// Fig 8: fraction of consecutive IOMMU translation requests within a given
/// VPN distance of each other (spatial locality, observation O4).
pub fn fig08_spatial_locality(ctx: &SweepCtx, scale: Scale) -> Table {
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .map(|b| RunConfig::new(b, scale, PolicyKind::Naive))
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "<=1", "<=2", "<=4", "<=8"]);
    for (b, m) in BenchmarkId::all().into_iter().zip(&results) {
        let h = &m.vpn_delta;
        t.row(vec![
            b.to_string(),
            pct(h.fraction_at_most(1)),
            pct(h.fraction_at_most(2)),
            pct(h.fraction_at_most(4)),
            pct(h.fraction_at_most(8)),
        ]);
    }
    t
}

/// Fig 13: IOMMU-served request time series for FIR at two problem sizes,
/// normalized per window to show the size-invariant shape.
pub fn fig13_size_invariance(ctx: &SweepCtx) -> Table {
    let results = ctx.sweep(&[
        RunConfig::new(BenchmarkId::Fir, Scale::Unit, PolicyKind::Naive),
        RunConfig::new(BenchmarkId::Fir, Scale::Bench, PolicyKind::Naive),
    ]);
    let (small, large) = (&results[0], &results[1]);
    let series = |m: &Metrics| -> Vec<f64> {
        let counts: Vec<u64> = m.iommu_served.windows().map(|w| w.count).collect();
        let peak = counts.iter().copied().max().unwrap_or(1).max(1) as f64;
        counts.iter().map(|&c| c as f64 / peak).collect()
    };
    let s = series(small);
    let l = series(large);
    // Resample both to 10 normalized-time buckets.
    let resample = |v: &[f64]| -> Vec<f64> {
        (0..10)
            .map(|i| {
                let lo = i * v.len() / 10;
                let hi = ((i + 1) * v.len() / 10).max(lo + 1).min(v.len().max(1));
                if v.is_empty() {
                    0.0
                } else {
                    v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
                }
            })
            .collect()
    };
    let (rs, rl) = (resample(&s), resample(&l));
    let mut t = Table::new(vec![
        "phase",
        "small-normalized-rate",
        "large-normalized-rate",
    ]);
    for i in 0..10 {
        t.row(vec![
            format!("{}%", i * 10),
            format!("{:.2}", rs[i]),
            format!("{:.2}", rl[i]),
        ]);
    }
    t
}

/// Fig 14: overall speedup of Trans-FW, Valkyrie, Barre and HDPAT over the
/// baseline, per benchmark plus geometric mean.
pub fn fig14_overall(ctx: &SweepCtx, scale: Scale) -> Table {
    let policies = [
        ("Trans-FW", PolicyKind::TransFw),
        ("Valkyrie", PolicyKind::Valkyrie),
        ("Barre", PolicyKind::Barre),
        ("HDPAT", PolicyKind::hdpat()),
    ];
    policy_matrix(ctx, scale, &policies)
}

/// Fig 15: the ablation over HDPAT's techniques.
pub fn fig15_ablation(ctx: &SweepCtx, scale: Scale) -> Table {
    let policies = [
        ("route", PolicyKind::RouteCache { caching_layers: 2 }),
        ("concentric", PolicyKind::Concentric { caching_layers: 2 }),
        ("distributed", PolicyKind::Distributed),
        (
            "cluster+rot",
            PolicyKind::Hdpat(HdpatConfig::peer_caching_only()),
        ),
        (
            "+redirection",
            PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        ),
        (
            "+prefetch",
            PolicyKind::Hdpat(HdpatConfig::with_prefetch_only()),
        ),
        ("HDPAT", PolicyKind::hdpat()),
    ];
    policy_matrix(ctx, scale, &policies)
}

/// Shared speedup matrix: one row per benchmark, one column per policy,
/// every cell normalized to the Naive baseline, plus a GMEAN row. All
/// `(1 + policies) × benchmarks` points go through the sweep as one batch.
fn policy_matrix(ctx: &SweepCtx, scale: Scale, policies: &[(&str, PolicyKind)]) -> Table {
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            std::iter::once(RunConfig::new(b, scale, PolicyKind::Naive)).chain(
                policies
                    .iter()
                    .map(move |(_, p)| RunConfig::new(b, scale, *p)),
            )
        })
        .collect();
    let results = ctx.sweep(&points);
    let mut headers = vec!["bench".to_string()];
    headers.extend(policies.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(headers);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let stride = policies.len() + 1;
    for (b, chunk) in BenchmarkId::all().into_iter().zip(results.chunks(stride)) {
        let base = &chunk[0];
        let mut row = vec![b.to_string()];
        for (i, m) in chunk[1..].iter().enumerate() {
            let s = m.speedup_vs(base);
            cols[i].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut gm = vec!["GMEAN".to_string()];
    gm.extend(cols.iter().map(|c| gmean_cell(c)));
    t.row(gm);
    t
}

/// Fig 16: how HDPAT resolves remote translations — peer cache /
/// redirection / proactive delivery / IOMMU shares per benchmark, plus the
/// total offload fraction.
pub fn fig16_breakdown(ctx: &SweepCtx, scale: Scale) -> Table {
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .map(|b| RunConfig::new(b, scale, PolicyKind::hdpat()))
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec![
        "bench",
        "peer-cache",
        "redirection",
        "proactive",
        "iommu",
        "offloaded",
    ]);
    let mut offloads = Vec::new();
    for (b, m) in BenchmarkId::all().into_iter().zip(&results) {
        offloads.push(m.offload_fraction());
        t.row(vec![
            b.to_string(),
            pct(m.resolution.share("peer-cache")),
            pct(m.resolution.share("redirection")),
            pct(m.resolution.share("proactive")),
            pct(m.resolution.share("iommu")),
            pct(m.offload_fraction()),
        ]);
    }
    let mean = offloads.iter().sum::<f64>() / offloads.len() as f64;
    t.row(vec![
        "MEAN".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        pct(mean),
    ]);
    t
}

/// Fig 17: remote-translation round-trip time under HDPAT, normalized to
/// the baseline, plus the additional NoC traffic HDPAT injects.
pub fn fig17_response_time(ctx: &SweepCtx, scale: Scale) -> Table {
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            [
                RunConfig::new(b, scale, PolicyKind::Naive),
                RunConfig::new(b, scale, PolicyKind::hdpat()),
            ]
        })
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "normalized-rtt", "extra-traffic"]);
    let mut rtts = Vec::new();
    let mut extras = Vec::new();
    for (b, chunk) in BenchmarkId::all().into_iter().zip(results.chunks(2)) {
        let (base, hd) = (&chunk[0], &chunk[1]);
        let norm = if base.remote_rtt.mean() > 0.0 {
            hd.remote_rtt.mean() / base.remote_rtt.mean()
        } else {
            1.0
        };
        let extra = if base.noc_bytes > 0 {
            hd.noc_bytes as f64 / base.noc_bytes as f64 - 1.0
        } else {
            0.0
        };
        rtts.push(norm);
        extras.push(extra);
        t.row(vec![b.to_string(), ratio(norm), pct(extra)]);
    }
    t.row(vec![
        "MEAN".into(),
        ratio(rtts.iter().sum::<f64>() / rtts.len() as f64),
        pct(extras.iter().sum::<f64>() / extras.len() as f64),
    ]);
    t
}

/// Fig 18: proactive-delivery granularity sweep (1 / 4 / 8 PTEs per walk).
pub fn fig18_prefetch_granularity(ctx: &SweepCtx, scale: Scale) -> Table {
    let degree = |d: u32| {
        PolicyKind::Hdpat(HdpatConfig {
            prefetch_degree: d,
            ..HdpatConfig::paper_default()
        })
    };
    let policies = [
        ("1-PTE", degree(1)),
        ("4-PTE", degree(4)),
        ("8-PTE", degree(8)),
    ];
    policy_matrix(ctx, scale, &policies)
}

/// Fig 19: redirection table vs a same-area conventional TLB at the IOMMU.
pub fn fig19_redir_vs_tlb(ctx: &SweepCtx, scale: Scale) -> Table {
    let policies = [
        ("redirection-table", PolicyKind::hdpat()),
        (
            "iommu-tlb",
            PolicyKind::Hdpat(HdpatConfig::with_iommu_tlb()),
        ),
    ];
    policy_matrix(ctx, scale, &policies)
}

/// Fig 20: page-size sweep. Geometric-mean performance of the baseline and
/// HDPAT at each page size, normalized to the 4 KB baseline.
///
/// 2 MB pages are omitted below `Scale::Full`: scaled footprints span fewer
/// 2 MB pages than the wafer has GPMs, which degenerates placement.
pub fn fig20_page_size(ctx: &SweepCtx, scale: Scale) -> Table {
    let sizes: &[PageSize] = if matches!(scale, Scale::Full) {
        &[
            PageSize::Size4K,
            PageSize::Size16K,
            PageSize::Size64K,
            PageSize::Size2M,
        ]
    } else {
        &[PageSize::Size4K, PageSize::Size16K, PageSize::Size64K]
    };
    // Points: the 4 KB reference baseline per benchmark, then per page size
    // a (baseline, HDPAT) pair per benchmark. The sweep's fingerprint cache
    // collapses the 4 KB baseline pair with the reference runs.
    let mut points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .map(|b| RunConfig::new(b, scale, PolicyKind::Naive))
        .collect();
    for &ps in sizes {
        let sys = SystemConfig {
            page_size: ps,
            ..SystemConfig::paper_baseline()
        };
        for b in BenchmarkId::all() {
            points.push(RunConfig::new(b, scale, PolicyKind::Naive).with_system(sys.clone()));
            points.push(RunConfig::new(b, scale, PolicyKind::hdpat()).with_system(sys.clone()));
        }
    }
    let results = ctx.sweep(&points);
    let n = BenchmarkId::all().len();
    let refs = &results[..n];
    let mut t = Table::new(vec!["page-size", "baseline", "HDPAT"]);
    for (si, &ps) in sizes.iter().enumerate() {
        let chunk = &results[n + si * 2 * n..n + (si + 1) * 2 * n];
        let mut base_norm = Vec::new();
        let mut hd_norm = Vec::new();
        for (i, pair) in chunk.chunks(2).enumerate() {
            base_norm.push(refs[i].total_cycles as f64 / pair[0].total_cycles as f64);
            hd_norm.push(refs[i].total_cycles as f64 / pair[1].total_cycles as f64);
        }
        t.row(vec![
            ps.to_string(),
            gmean_cell(&base_norm),
            gmean_cell(&hd_norm),
        ]);
    }
    t
}

/// Fig 21: geometric-mean HDPAT speedup across commercial GPU presets.
pub fn fig21_gpu_presets(ctx: &SweepCtx, scale: Scale) -> Table {
    let mut points = Vec::new();
    for preset in GpuPreset::all() {
        let sys = SystemConfig::with_preset(preset);
        for b in BenchmarkId::all() {
            points.push(RunConfig::new(b, scale, PolicyKind::Naive).with_system(sys.clone()));
            points.push(RunConfig::new(b, scale, PolicyKind::hdpat()).with_system(sys.clone()));
        }
    }
    let results = ctx.sweep(&points);
    let n = BenchmarkId::all().len();
    let mut t = Table::new(vec!["preset", "hdpat-speedup"]);
    for (pi, preset) in GpuPreset::all().into_iter().enumerate() {
        let chunk = &results[pi * 2 * n..(pi + 1) * 2 * n];
        let speeds: Vec<f64> = chunk
            .chunks(2)
            .map(|pair| pair[1].speedup_vs(&pair[0]))
            .collect();
        t.row(vec![preset.name().to_string(), gmean_cell(&speeds)]);
    }
    t
}

/// Fig 22: HDPAT speedup per benchmark on the larger 7×12 wafer.
pub fn fig22_wafer_7x12(ctx: &SweepCtx, scale: Scale) -> Table {
    let sys = SystemConfig {
        layout: WaferLayout::paper_7x12(),
        ..SystemConfig::paper_baseline()
    };
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            [
                RunConfig::new(b, scale, PolicyKind::Naive).with_system(sys.clone()),
                RunConfig::new(b, scale, PolicyKind::hdpat()).with_system(sys.clone()),
            ]
        })
        .collect();
    let results = ctx.sweep(&points);
    let mut t = Table::new(vec!["bench", "hdpat-speedup"]);
    let mut speeds = Vec::new();
    for (b, chunk) in BenchmarkId::all().into_iter().zip(results.chunks(2)) {
        let s = chunk[1].speedup_vs(&chunk[0]);
        speeds.push(s);
        t.row(vec![b.to_string(), ratio(s)]);
    }
    t.row(vec!["GMEAN".into(), gmean_cell(&speeds)]);
    t
}

/// Table I: the wafer-scale GPU configuration.
pub fn tab1_config() -> Table {
    let cfg = SystemConfig::paper_baseline();
    let mut t = Table::new(vec!["module", "configuration"]);
    t.row(vec![
        "CU".into(),
        format!("1.0 GHz, {} per GPM", cfg.gpm.cus),
    ]);
    t.row(vec![
        "L1 Vector Cache".into(),
        format!(
            "{} KB, {}-way",
            cfg.gpm.l1_cache.capacity_bytes() >> 10,
            cfg.gpm.l1_cache.ways
        ),
    ]);
    t.row(vec![
        "L2 Cache".into(),
        format!(
            "{} MB, {}-way",
            cfg.gpm.l2_cache.capacity_bytes() >> 20,
            cfg.gpm.l2_cache.ways
        ),
    ]);
    t.row(vec![
        "L1 TLB".into(),
        format!(
            "{}-set, {}-way, {}-MSHR, {}-cycle",
            cfg.gpm.l1_tlb.sets, cfg.gpm.l1_tlb.ways, cfg.gpm.l1_tlb.mshrs, cfg.gpm.l1_tlb.latency
        ),
    ]);
    t.row(vec![
        "L2 TLB".into(),
        format!(
            "{}-set, {}-way, {}-MSHR, {}-cycle",
            cfg.gpm.l2_tlb.sets, cfg.gpm.l2_tlb.ways, cfg.gpm.l2_tlb.mshrs, cfg.gpm.l2_tlb.latency
        ),
    ]);
    t.row(vec![
        "GMMU Cache".into(),
        format!(
            "{}-set, {}-way",
            cfg.gpm.gmmu_cache.sets, cfg.gpm.gmmu_cache.ways
        ),
    ]);
    t.row(vec![
        "GMMU".into(),
        format!(
            "{} shared walkers, {} cycles/walk",
            cfg.gpm.gmmu_walkers, cfg.gpm.walk_latency
        ),
    ]);
    t.row(vec![
        "IOMMU".into(),
        format!(
            "{} shared walkers, {} cycles/walk",
            cfg.iommu.walkers, cfg.iommu.walk_latency
        ),
    ]);
    t.row(vec![
        "Redirection Table".into(),
        format!("{} entries, LRU", cfg.iommu.redirection_entries),
    ]);
    t.row(vec![
        "HBM".into(),
        format!(
            "{} GB, {:.2} TB/s",
            cfg.gpm.hbm.capacity_bytes >> 30,
            cfg.gpm.hbm.bytes_per_cycle / 1000.0
        ),
    ]);
    t.row(vec![
        "Mesh Network".into(),
        format!(
            "{} GB/s per link, {}-cycle latency",
            cfg.link.bytes_per_cycle as u64, cfg.link.latency
        ),
    ]);
    t.row(vec![
        "Wafer".into(),
        format!(
            "{}x{} tiles, {} GPMs, CPU at {}",
            cfg.layout.width(),
            cfg.layout.height(),
            cfg.layout.gpm_count(),
            cfg.layout.cpu()
        ),
    ]);
    t
}

/// Table II: the benchmark catalog.
pub fn tab2_workloads() -> Table {
    let mut t = Table::new(vec![
        "abbr",
        "benchmark",
        "suite",
        "workgroups",
        "memory-fp",
    ]);
    for b in BenchmarkId::all() {
        let info = b.info();
        t.row(vec![
            info.abbr.to_string(),
            info.name.to_string(),
            info.suite.to_string(),
            info.paper_workgroups.to_string(),
            format!("{} MB", info.paper_footprint_mb),
        ]);
    }
    t
}

/// §V-F: area and power of the HDPAT hardware additions.
pub fn tab3_area_power() -> Table {
    let mut t = Table::new(vec![
        "structure",
        "bits",
        "area-mm2",
        "power-w",
        "area-overhead",
        "power-overhead",
    ]);
    for (name, est) in [
        ("redirection-table-1024", hdpat::area::redirection_table()),
        ("equivalent-tlb-512", hdpat::area::equivalent_tlb()),
        ("cuckoo-filter-64k", hdpat::area::cuckoo_filter(64 * 1024)),
    ] {
        t.row(vec![
            name.to_string(),
            est.bits.to_string(),
            format!("{:.4}", est.area_mm2),
            format!("{:.3}", est.power_w),
            pct(est.area_overhead()),
            pct(est.power_overhead()),
        ]);
    }
    t
}
