//! Plain-text, CSV and Markdown emitters for figure output.

use wsg_sim::stats::geo_mean;

/// A printable result table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated, no quoting — cells must not contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table (first column
    /// left-aligned, the rest right-aligned). `hdpat-sim regen-experiments`
    /// uses this to rewrite the measured tables of EXPERIMENTS.md, so the
    /// rendering must stay byte-stable for identical row data.
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for i in 0..self.headers.len() {
            out.push_str(if i == 0 { "---|" } else { "---:|" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(
                &row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push_str(" |\n");
        }
        out
    }
}

/// Formats a ratio as `1.57x` style.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats the geometric mean of `values` as a ratio cell, or `n/a` when the
/// mean is undefined (empty input or a non-positive value). Figures use this
/// instead of `geo_mean(..).unwrap_or(0.0)`, which silently rendered an
/// impossible `0.00` speedup for an empty slice.
pub fn gmean_cell(values: &[f64]) -> String {
    match geo_mean(values) {
        Some(g) => ratio(g),
        None => "n/a".into(),
    }
}

/// Prints a figure banner plus the table, used by every bench target.
pub fn emit(figure: &str, caption: &str, table: &Table) {
    println!("==== {figure} ====");
    println!("{caption}");
    println!();
    println!("{}", table.to_text());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["bench", "speedup"]);
        t.row(vec!["SPMV", "1.57"]);
        t.row(vec!["A", "2"]);
        let text = t.to_text();
        assert!(text.contains("bench"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.567), "1.57");
        assert_eq!(pct(0.421), "42.1%");
    }

    #[test]
    fn gmean_cell_renders_na_not_zero() {
        assert_eq!(gmean_cell(&[2.0, 2.0]), "2.00");
        assert_eq!(gmean_cell(&[]), "n/a");
        assert_eq!(gmean_cell(&[1.0, 0.0]), "n/a");
    }

    #[test]
    fn markdown_table_shape() {
        let mut t = Table::new(vec!["bench", "speedup"]);
        t.row(vec!["SPMV", "1.57"]);
        t.row(vec!["with|pipe", "2.00"]);
        assert_eq!(
            t.to_markdown(),
            "| bench | speedup |\n|---|---:|\n| SPMV | 1.57 |\n| with\\|pipe | 2.00 |\n"
        );
    }
}
