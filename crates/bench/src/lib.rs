#![warn(missing_docs)]

//! Benchmark harness regenerating every table and figure of the HDPAT
//! paper.
//!
//! Each `benches/figXX_*.rs` target is a thin wrapper around a function in
//! [`figures`]; the functions return plain row data so integration tests can
//! assert on the *shape* of each result (who wins, by roughly what factor)
//! while the bench binaries print the same rows the paper plots.
//!
//! Scale control: the `WSG_SCALE` environment variable selects `unit`
//! (seconds, smoke-test quality) or `bench` (the default; minutes,
//! reproduction quality) for all figure benches. `WSG_JOBS` caps the sweep
//! worker count (default: the host's available parallelism) — it changes
//! wall-clock time only, never a byte of output.

pub mod figures;
pub mod regen;
pub mod report;
pub mod serving;

use hdpat::experiments::SweepCtx;
use wsg_workloads::Scale;

/// The scale figure benches run at: `WSG_SCALE=unit|bench|full`
/// (default `bench`).
pub fn scale_from_env() -> Scale {
    match std::env::var("WSG_SCALE").as_deref() {
        Ok("unit") => Scale::Unit,
        Ok("full") => Scale::Full,
        _ => Scale::Bench,
    }
}

/// A sweep context sized by `WSG_JOBS` (default: available parallelism),
/// used by every figure bench target.
pub fn ctx_from_env() -> SweepCtx {
    match std::env::var("WSG_JOBS").ok().and_then(|j| j.parse().ok()) {
        Some(jobs) => SweepCtx::new(jobs),
        None => SweepCtx::auto(),
    }
}
