#![warn(missing_docs)]

//! Benchmark harness regenerating every table and figure of the HDPAT
//! paper.
//!
//! Each `benches/figXX_*.rs` target is a thin wrapper around a function in
//! [`figures`]; the functions return plain row data so integration tests can
//! assert on the *shape* of each result (who wins, by roughly what factor)
//! while the bench binaries print the same rows the paper plots.
//!
//! Scale control: the `WSG_SCALE` environment variable selects `unit`
//! (seconds, smoke-test quality) or `bench` (the default; minutes,
//! reproduction quality) for all figure benches.

pub mod figures;
pub mod report;

use wsg_workloads::Scale;

/// The scale figure benches run at: `WSG_SCALE=unit|bench|full`
/// (default `bench`).
pub fn scale_from_env() -> Scale {
    match std::env::var("WSG_SCALE").as_deref() {
        Ok("unit") => Scale::Unit,
        Ok("full") => Scale::Full,
        _ => Scale::Bench,
    }
}
