//! Client-side serving utilities: the recorded request mixes, the replay
//! harness (`hdpat-sim replay`), and the deterministic replay artifact.
//!
//! A *mix* is a newline-delimited JSON file of `submit` requests (one per
//! line, no control requests) — `hdpat-sim emit-mix` generates them. The
//! replay harness feeds a mix to a daemon either **in-process** (batch
//! mode: boots a [`Daemon`], streams the mix through one connection) or
//! over a **Unix socket** (client mode), collects the responses, and
//! digests them into two artifacts:
//!
//! * the deterministic response digest ([`digest`]) — request ids,
//!   fingerprints, and full metrics text, byte-identical however the
//!   responses were produced (fresh simulation, memory hit, disk hit,
//!   batch or socket) — the `cmp` side of the CI serve lane;
//! * [`ReplayStats`] — result counts and per-source attribution
//!   (simulated / memory / disk), the hit-rate side of the lane.

use std::io::Cursor;
use std::sync::{Arc, Mutex};

use hdpat::experiments::RunConfig;
use hdpat::policy::PolicyKind;
use hdpat::serve::json::Json;
use hdpat::serve::proto;
use hdpat::serve::{Daemon, DaemonConfig};
use wsg_workloads::{BenchmarkId, Scale};

/// The fig14 policy set (baseline + the four headline competitors), with
/// their stable catalog tokens — kept in sync with
/// `figures::fig14_overall` by `tests/serving.rs`.
pub fn fig14_policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("naive", PolicyKind::Naive),
        ("transfw", PolicyKind::TransFw),
        ("valkyrie", PolicyKind::Valkyrie),
        ("barre", PolicyKind::Barre),
        ("hdpat", PolicyKind::hdpat()),
    ]
}

/// The fig14 request mix: every Table II benchmark under the baseline and
/// the four Fig 14 policies, ids `q0001…`, in the exact point order of the
/// figure's sweep — so a daemon that served this mix has a disk cache that
/// `hdpat-sim figure fig14` hits, and vice versa.
pub fn fig14_mix(scale: Scale, seed: u64) -> String {
    let mut out = String::new();
    let mut n = 0u32;
    for bench in BenchmarkId::all() {
        for (token, _) in fig14_policies() {
            n += 1;
            out.push_str(&proto::submit_line(
                &format!("q{n:04}"),
                bench,
                token,
                scale,
                seed,
            ));
            out.push('\n');
        }
    }
    out
}

/// The `RunConfig`s the fig14 mix resolves to, in mix order (for tests
/// asserting mix/figure fingerprint agreement).
pub fn fig14_configs(scale: Scale, seed: u64) -> Vec<RunConfig> {
    BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            fig14_policies()
                .into_iter()
                .map(move |(_, p)| RunConfig::new(b, scale, p).with_seed(seed))
        })
        .collect()
}

/// A `Write` handle over a shared buffer: the in-process connection writer
/// for batch replay (the daemon moves the handle; the caller keeps a clone
/// to read the responses back).
#[derive(Clone, Default)]
pub struct CollectWriter(Arc<Mutex<Vec<u8>>>);

impl CollectWriter {
    /// Everything written so far, as UTF-8 text.
    pub fn contents(&self) -> String {
        let buf = match self.0.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl std::io::Write for CollectWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut inner = match self.0.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A response line plus its client-observed arrival time in microseconds
/// since the replay started. Replays submit the whole mix up front, so the
/// arrival offset *is* the end-to-end latency the client saw for that
/// response. Feeds [`latency_report`]; never the deterministic [`digest`].
pub type TimedLine = (String, u64);

/// Batch replay: boots an in-process daemon with `config`, streams the mix
/// through one connection, drains it, and returns the response lines.
pub fn replay_batch(mix: &str, config: DaemonConfig) -> std::io::Result<Vec<String>> {
    Ok(replay_batch_timed(mix, config)?
        .into_iter()
        .map(|(line, _)| line)
        .collect())
}

/// [`replay_batch`], with each response line stamped with its arrival
/// offset for [`latency_report`].
pub fn replay_batch_timed(mix: &str, config: DaemonConfig) -> std::io::Result<Vec<TimedLine>> {
    // lint:allow(wallclock): client-side latency observation of a replay;
    // feeds the stderr latency table only, never a deterministic artifact.
    let started = std::time::Instant::now();
    let daemon = Daemon::new(config)?;
    let out = CollectWriter::default();
    daemon.serve_connection(Cursor::new(mix.to_string()), out.clone());
    daemon.join();
    // Batch mode drains the connection before returning, so per-line stamps
    // are unavailable; attribute every line to the total drain time. The
    // table still shows the end-to-end picture; socket replay gives true
    // per-response arrivals.
    let total = elapsed_us(started);
    Ok(out
        .contents()
        .lines()
        .map(|l| (l.to_string(), total))
        .collect())
}

fn elapsed_us(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Socket replay: connects to a running daemon, sends the whole mix, and
/// reads responses until every submit is answered. With `shutdown`, a
/// `{"op":"shutdown"}` follows the mix and the read continues to the ack
/// (drained daemons exit afterwards). Returns every received line,
/// shutdown-ack included.
///
/// The mix must be submit-only: the reader counts one `result`/`error`
/// response per request line.
#[cfg(unix)]
pub fn replay_socket(
    mix: &str,
    socket: &std::path::Path,
    shutdown: bool,
) -> std::io::Result<Vec<String>> {
    Ok(replay_socket_timed(mix, socket, shutdown)?
        .into_iter()
        .map(|(line, _)| line)
        .collect())
}

/// [`replay_socket`], with each response line stamped with its arrival
/// offset for [`latency_report`].
#[cfg(unix)]
pub fn replay_socket_timed(
    mix: &str,
    socket: &std::path::Path,
    shutdown: bool,
) -> std::io::Result<Vec<TimedLine>> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    // lint:allow(wallclock): client-side latency observation of a replay;
    // feeds the stderr latency table only, never a deterministic artifact.
    let started = std::time::Instant::now();
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let expected = mix.lines().filter(|l| !l.trim().is_empty()).count();
    writer.write_all(mix.as_bytes())?;
    if !mix.ends_with('\n') {
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    let mut lines = Vec::new();
    let mut answered = 0usize;
    let mut line = String::new();
    while answered < expected {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("daemon closed after {answered}/{expected} responses"),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if matches!(response_type(trimmed).as_deref(), Some("result" | "error")) {
            answered += 1;
        }
        lines.push((trimmed.to_string(), elapsed_us(started)));
    }
    if shutdown {
        writer.write_all(b"{\"op\":\"shutdown\"}\n")?;
        writer.flush()?;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed before the shutdown ack",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            lines.push((trimmed.to_string(), elapsed_us(started)));
            if response_type(trimmed).as_deref() == Some("shutdown-ack") {
                break;
            }
        }
    }
    Ok(lines)
}

fn response_type(line: &str) -> Option<String> {
    Json::parse(line)
        .ok()?
        .get("type")?
        .as_str()
        .map(str::to_string)
}

/// Per-source and per-outcome counts of one replay.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// `result` responses received.
    pub results: u64,
    /// `error` responses received.
    pub errors: u64,
    /// Results attributed `"source":"simulated"`.
    pub simulated: u64,
    /// Results attributed `"source":"memory"`.
    pub memory: u64,
    /// Results attributed `"source":"disk"`.
    pub disk: u64,
}

impl ReplayStats {
    /// Renders the stats (plus caller-measured wall time) as a small JSON
    /// document for `--stats-out`.
    pub fn to_json(&self, wall_seconds: f64) -> String {
        let rate = if wall_seconds > 0.0 {
            self.results as f64 / wall_seconds
        } else {
            0.0
        };
        format!(
            "{{\n  \"results\": {},\n  \"errors\": {},\n  \"sources\": {{\n    \
             \"simulated\": {},\n    \"memory\": {},\n    \"disk\": {}\n  }},\n  \
             \"wall_seconds\": {:.3},\n  \"results_per_sec\": {:.1}\n}}\n",
            self.results, self.errors, self.simulated, self.memory, self.disk, wall_seconds, rate
        )
    }
}

/// Digests raw response lines into the deterministic replay artifact and
/// the replay statistics.
///
/// The artifact records, per response and in response order:
///
/// * a `result` as `=== <id> <fingerprint>` followed by the full
///   deterministic metrics text — everything that must not vary between
///   fresh simulation, memory hits, disk hits, batch and socket transport;
/// * an `error` as `=== <id> error <code>`;
///
/// and omits the nondeterministic rest (`source` attribution, `progress`
/// events, the `shutdown-ack`), which lands in [`ReplayStats`] instead.
pub fn digest(lines: &[String]) -> (String, ReplayStats) {
    let mut artifact = String::new();
    let mut stats = ReplayStats::default();
    for line in lines {
        let Ok(v) = Json::parse(line) else {
            artifact.push_str("=== ? unparseable response\n");
            continue;
        };
        let ty = v.get("type").and_then(Json::as_str).unwrap_or("?");
        let id = v.get("id").and_then(Json::as_str).unwrap_or("-");
        match ty {
            "result" => {
                stats.results += 1;
                match v.get("source").and_then(Json::as_str) {
                    Some("simulated") => stats.simulated += 1,
                    Some("memory") => stats.memory += 1,
                    Some("disk") => stats.disk += 1,
                    _ => {}
                }
                let fp = v.get("fingerprint").and_then(Json::as_str).unwrap_or("?");
                artifact.push_str(&format!("=== {id} {fp}\n"));
                if let Some(metrics) = v.get("metrics").and_then(Json::as_str) {
                    artifact.push_str(metrics);
                    if !metrics.ends_with('\n') {
                        artifact.push('\n');
                    }
                }
            }
            "error" => {
                stats.errors += 1;
                let code = v.get("code").and_then(Json::as_str).unwrap_or("?");
                artifact.push_str(&format!("=== {id} error {code}\n"));
            }
            // Timing/attribution side-band: stats only.
            "progress" | "shutdown-ack" | "status" | "cache-stats" | "cancelled" | "metrics" => {}
            other => {
                artifact.push_str(&format!("=== {id} unexpected {other}\n"));
            }
        }
    }
    (artifact, stats)
}

/// Renders a client-observed latency table from timed replay lines: one row
/// per result source (simulated / memory / disk) plus an `all` total, with
/// count, mean, p50, p95, and max in microseconds. Quantiles are log-bucket
/// upper bounds from [`wsg_sim::stats::LogHistogram`]. Diagnostic output
/// for stderr — never part of the deterministic replay digest.
pub fn latency_report(timed: &[TimedLine]) -> String {
    use wsg_sim::stats::LogHistogram;
    let mut by_source: Vec<(&str, LogHistogram)> = ["simulated", "memory", "disk", "all"]
        .into_iter()
        .map(|s| (s, LogHistogram::new()))
        .collect();
    for (line, us) in timed {
        let Ok(v) = Json::parse(line) else { continue };
        if v.get("type").and_then(Json::as_str) != Some("result") {
            continue;
        }
        let source = v.get("source").and_then(Json::as_str).unwrap_or("?");
        for (name, hist) in &mut by_source {
            if *name == source || *name == "all" {
                hist.record(*us);
            }
        }
    }
    let mut out =
        String::from("source      count      mean_us       p50_us       p95_us       max_us\n");
    for (name, hist) in &by_source {
        let count = hist.count();
        if count == 0 && *name != "all" {
            continue;
        }
        let mean = hist.mean().round() as u64;
        out.push_str(&format!(
            "{name:<10} {count:>6} {mean:>12} {:>12} {:>12} {:>12}\n",
            hist.quantile_upper_bound(0.50),
            hist.quantile_upper_bound(0.95),
            hist.max(),
        ));
    }
    out
}
