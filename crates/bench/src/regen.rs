//! Regenerable measured tables for EXPERIMENTS.md.
//!
//! EXPERIMENTS.md brackets each machine-generated table with marker
//! comments:
//!
//! ```text
//! <!-- generated:fig14 -->
//! | bench | Trans-FW | ... |
//! <!-- /generated:fig14 -->
//! ```
//!
//! `hdpat-sim regen-experiments` re-runs the backing sweeps and splices the
//! fresh Markdown between the markers, so the measured numbers in the doc
//! are a build artifact instead of hand-edited text; `--check` (the CI doc
//! drift gate, see ci.sh) verifies a regeneration changes nothing. Only the
//! marked blocks are touched — the surrounding prose (paper claims,
//! verdicts, caveats) stays hand-written.

use hdpat::experiments::SweepCtx;
use wsg_workloads::Scale;

use crate::figures;

/// The generated blocks, in document order: `(marker id, Markdown body)`.
///
/// The backing sweeps share `ctx`'s run cache, so the Naive baseline column
/// and the HDPAT runs are simulated once across all blocks.
pub fn blocks(ctx: &SweepCtx, scale: Scale) -> Vec<(&'static str, String)> {
    vec![
        ("fig14", figures::fig14_overall(ctx, scale).to_markdown()),
        ("fig15", figures::fig15_ablation(ctx, scale).to_markdown()),
        ("fig16", figures::fig16_breakdown(ctx, scale).to_markdown()),
    ]
}

/// Replaces the body between `<!-- generated:id -->` and
/// `<!-- /generated:id -->` in `doc` with `body`.
///
/// # Errors
///
/// Returns a message naming the missing marker if either delimiter is
/// absent or out of order.
pub fn splice(doc: &str, id: &str, body: &str) -> Result<String, String> {
    let begin = format!("<!-- generated:{id} -->");
    let end = format!("<!-- /generated:{id} -->");
    let begin_at = doc
        .find(&begin)
        .ok_or_else(|| format!("marker `{begin}` not found"))?;
    let content_start = begin_at + begin.len();
    let end_at = doc[content_start..]
        .find(&end)
        .map(|i| content_start + i)
        .ok_or_else(|| format!("marker `{end}` not found after `{begin}`"))?;
    Ok(format!(
        "{}\n{}{}",
        &doc[..content_start],
        body,
        &doc[end_at..]
    ))
}

/// Splices every `(id, body)` pair into `doc`.
///
/// # Errors
///
/// Propagates the first [`splice`] failure.
pub fn apply(doc: &str, blocks: &[(&'static str, String)]) -> Result<String, String> {
    let mut out = doc.to_string();
    for (id, body) in blocks {
        out = splice(&out, id, body)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "intro\n<!-- generated:fig14 -->\nstale\n<!-- /generated:fig14 -->\ntail\n";

    #[test]
    fn splice_replaces_only_the_block() {
        let out = splice(DOC, "fig14", "| fresh |\n").unwrap();
        assert_eq!(
            out,
            "intro\n<!-- generated:fig14 -->\n| fresh |\n<!-- /generated:fig14 -->\ntail\n"
        );
    }

    #[test]
    fn splice_is_idempotent() {
        let once = splice(DOC, "fig14", "| fresh |\n").unwrap();
        let twice = splice(&once, "fig14", "| fresh |\n").unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn missing_markers_are_reported() {
        assert!(splice(DOC, "fig99", "x\n").unwrap_err().contains("fig99"));
        let unterminated = "<!-- generated:fig14 -->\nno end";
        assert!(splice(unterminated, "fig14", "x\n")
            .unwrap_err()
            .contains("/generated:fig14"));
    }

    #[test]
    fn apply_splices_every_block() {
        let doc = format!("{DOC}<!-- generated:fig15 -->\nold\n<!-- /generated:fig15 -->\n");
        let out = apply(
            &doc,
            &[
                ("fig14", "| a |\n".to_string()),
                ("fig15", "| b |\n".to_string()),
            ],
        )
        .unwrap();
        assert!(out.contains("| a |"));
        assert!(out.contains("| b |"));
        assert!(!out.contains("stale"));
        assert!(!out.contains("old"));
    }
}
