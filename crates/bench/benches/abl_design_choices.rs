//! Ablation benches for HDPAT's design choices beyond the paper's Fig 15:
//!
//! * rotation on/off (§IV-E),
//! * number of concentric caching layers `C` (§IV-C says 0..3 on a 7×7),
//! * selective-push threshold (§IV-F),
//! * PW-queue revisit on/off (§IV-F).
//!
//! Run with `cargo bench --bench abl_design_choices`.

use hdpat::experiments::{RunConfig, SweepCtx};
use hdpat::policy::{HdpatConfig, PolicyKind};
use wsg_bench::report::{emit, ratio, Table};
use wsg_sim::stats::geo_mean;
use wsg_workloads::BenchmarkId;

/// Representative subset spanning the suite's pattern classes.
const BENCHES: [BenchmarkId; 6] = [
    BenchmarkId::Spmv,
    BenchmarkId::Pr,
    BenchmarkId::Mm,
    BenchmarkId::Fir,
    BenchmarkId::Bt,
    BenchmarkId::Relu,
];

fn gmean_speedup(ctx: &SweepCtx, cfg: HdpatConfig, scale: wsg_workloads::Scale) -> f64 {
    // One (baseline, variant) pair per benchmark; the shared run cache
    // dedups the six Naive baselines across all eleven variants.
    let points: Vec<RunConfig> = BENCHES
        .iter()
        .flat_map(|&b| {
            [
                RunConfig::new(b, scale, PolicyKind::Naive),
                RunConfig::new(b, scale, PolicyKind::Hdpat(cfg)),
            ]
        })
        .collect();
    let results = ctx.sweep(&points);
    let speeds: Vec<f64> = results
        .chunks(2)
        .map(|pair| pair[1].speedup_vs(&pair[0]))
        .collect();
    geo_mean(&speeds).expect("positive speedups")
}

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let base_cfg = HdpatConfig::paper_default();

    let mut t = Table::new(vec!["variant", "gmean-speedup"]);

    // Rotation.
    for (name, rotation) in [("rotation on (default)", true), ("rotation off", false)] {
        let s = gmean_speedup(
            &ctx,
            HdpatConfig {
                rotation,
                ..base_cfg
            },
            scale,
        );
        t.row(vec![name.to_string(), ratio(s)]);
    }

    // Caching layers C.
    for c in 1..=3u32 {
        let s = gmean_speedup(
            &ctx,
            HdpatConfig {
                caching_layers: c,
                ..base_cfg
            },
            scale,
        );
        t.row(vec![format!("C = {c} caching layers"), ratio(s)]);
    }

    // Selective-push threshold.
    for thr in [1u32, 2, 4, 8] {
        let s = gmean_speedup(
            &ctx,
            HdpatConfig {
                push_threshold: thr,
                ..base_cfg
            },
            scale,
        );
        t.row(vec![format!("push threshold = {thr}"), ratio(s)]);
    }

    // PW-queue revisit.
    for (name, revisit) in [("revisit on (default)", true), ("revisit off", false)] {
        let s = gmean_speedup(
            &ctx,
            HdpatConfig {
                queue_revisit: revisit,
                ..base_cfg
            },
            scale,
        );
        t.row(vec![name.to_string(), ratio(s)]);
    }

    emit(
        "Design-choice ablation",
        "Geometric-mean HDPAT speedup over the baseline across a representative \
         benchmark subset (SPMV, PR, MM, FIR, BT, RELU) for each design knob.",
        &t,
    );
}
