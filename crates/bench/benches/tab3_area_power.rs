//! Bench target regenerating Sec V-F of the HDPAT paper.
//!
//! Run with `cargo bench --bench tab3_area_power`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let table = wsg_bench::figures::tab3_area_power();
    wsg_bench::report::emit(
        "Sec V-F",
        "Area and power overhead of the HDPAT hardware additions.",
        &table,
    );
}
