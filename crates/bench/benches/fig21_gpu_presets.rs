//! Bench target regenerating Fig 21 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig21_gpu_presets`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig21_gpu_presets(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 21",
        "Geometric-mean HDPAT speedup across commercial GPU configurations.",
        &table,
    );
}
