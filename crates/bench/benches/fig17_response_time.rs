//! Bench target regenerating Fig 17 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig17_response_time`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig17_response_time(&ctx, scale);
    wsg_bench::report::emit("Fig 17", "Remote-translation round-trip time with HDPAT, normalized to baseline, plus extra NoC traffic.", &table);
}
