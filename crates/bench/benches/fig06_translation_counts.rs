//! Bench target regenerating Fig 6 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig06_translation_counts`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig06_translation_counts(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 6",
        "Distribution of per-VPN translation counts observed at the IOMMU.",
        &table,
    );
}
