//! Bench target regenerating Fig 3 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig03_latency_breakdown`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig03_latency_breakdown(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 3",
        "Averaged latency breakdown per IOMMU translation request for SPMV.",
        &table,
    );
}
