//! Bench target regenerating Fig 8 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig08_spatial_locality`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig08_spatial_locality(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 8",
        "VPN distance between consecutive IOMMU translation requests (spatial locality).",
        &table,
    );
}
