//! Bench target regenerating Fig 14 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig14_overall`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig14_overall(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 14",
        "Overall speedup of Trans-FW, Valkyrie, Barre and HDPAT over the baseline.",
        &table,
    );
}
