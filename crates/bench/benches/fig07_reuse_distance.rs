//! Bench target regenerating Fig 7 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig07_reuse_distance`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig07_reuse_distance(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 7",
        "Reuse distances between repeated translation requests (selected benchmarks).",
        &table,
    );
}
