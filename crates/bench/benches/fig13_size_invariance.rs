//! Bench target regenerating Fig 13 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig13_size_invariance`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig13_size_invariance(&ctx);
    wsg_bench::report::emit(
        "Fig 13",
        "IOMMU-served request rate over normalized time for FIR at two problem sizes.",
        &table,
    );
}
