//! Bench target regenerating Fig 22 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig22_wafer_7x12`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig22_wafer_7x12(&ctx, scale);
    wsg_bench::report::emit("Fig 22", "HDPAT speedup on the larger 7x12 wafer.", &table);
}
