//! Bench target regenerating Table I of the HDPAT paper.
//!
//! Run with `cargo bench --bench tab1_config`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let table = wsg_bench::figures::tab1_config();
    wsg_bench::report::emit(
        "Table I",
        "Configuration of the simulated wafer-scale GPU.",
        &table,
    );
}
