//! Bench target regenerating Fig 5 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig05_position_imbalance`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig05_position_imbalance(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 5",
        "GPM execution time by geometric position (concentric ring) for SPMV and MM.",
        &table,
    );
}
