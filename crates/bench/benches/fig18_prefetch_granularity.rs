//! Bench target regenerating Fig 18 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig18_prefetch_granularity`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig18_prefetch_granularity(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 18",
        "Performance impact of proactive-delivery granularity (1/4/8 PTEs).",
        &table,
    );
}
