//! Bench target regenerating Fig 19 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig19_redir_vs_tlb`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig19_redir_vs_tlb(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 19",
        "Redirection table vs a same-area conventional TLB at the IOMMU.",
        &table,
    );
}
