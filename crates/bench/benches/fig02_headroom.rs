//! Bench target regenerating Fig 2 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig02_headroom`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig02_headroom(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 2",
        "Performance headroom of idealized IOMMUs over the baseline MMU configuration.",
        &table,
    );
}
