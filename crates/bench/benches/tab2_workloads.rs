//! Bench target regenerating Table II of the HDPAT paper.
//!
//! Run with `cargo bench --bench tab2_workloads`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let table = wsg_bench::figures::tab2_workloads();
    wsg_bench::report::emit(
        "Table II",
        "Benchmarks, workgroup counts, and memory footprints.",
        &table,
    );
}
