//! Bench target regenerating Fig 4 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig04_buffer_pressure`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig04_buffer_pressure(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 4",
        "IOMMU buffer pressure over time: MCM-GPU (4 GPMs) vs wafer-scale GPU (48 GPMs), SPMV.",
        &table,
    );
}
