//! Bench target regenerating Fig 16 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig16_breakdown`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig16_breakdown(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 16",
        "Breakdown of how address translations are handled in HDPAT.",
        &table,
    );
}
