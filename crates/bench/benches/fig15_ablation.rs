//! Bench target regenerating Fig 15 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig15_ablation`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig15_ablation(&ctx, scale);
    wsg_bench::report::emit("Fig 15", "Ablation over HDPAT's techniques (route/concentric/distributed/cluster+rotation/redirection/prefetch).", &table);
}
