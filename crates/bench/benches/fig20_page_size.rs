//! Bench target regenerating Fig 20 of the HDPAT paper.
//!
//! Run with `cargo bench --bench fig20_page_size`; set `WSG_SCALE=unit` for a quick
//! smoke run.

fn main() {
    let scale = wsg_bench::scale_from_env();
    let ctx = wsg_bench::ctx_from_env();
    let table = wsg_bench::figures::fig20_page_size(&ctx, scale);
    wsg_bench::report::emit(
        "Fig 20",
        "System page-size sweep, normalized to the 4KB baseline.",
        &table,
    );
}
