//! Extension study: streak-based page migration (the paper's named
//! future-work direction) composed with the baseline and with HDPAT.
//!
//! Run with `cargo bench --bench abl_migration`.

use hdpat::experiments::{hardware_divisor, scale_hardware, RunConfig};
use hdpat::policy::PolicyKind;
use hdpat::{MigrationConfig, Simulation};
use wsg_bench::report::{emit, gmean_cell, ratio, Table};
use wsg_workloads::BenchmarkId;

const BENCHES: [BenchmarkId; 6] = [
    BenchmarkId::Spmv,
    BenchmarkId::Pr,
    BenchmarkId::Mm,
    BenchmarkId::Fir,
    BenchmarkId::Relu,
    BenchmarkId::Km,
];

fn run_maybe_migrating(cfg: &RunConfig, migration: Option<MigrationConfig>) -> hdpat::Metrics {
    let mut system = cfg.system.clone();
    scale_hardware(&mut system, 1); // already scaled by RunConfig::new
    let sim = Simulation::new(system, cfg.policy, cfg.benchmark, cfg.scale, cfg.seed);
    match migration {
        Some(m) => sim.with_migration(m).run(),
        None => sim.run(),
    }
}

fn main() {
    let scale = wsg_bench::scale_from_env();
    let _ = hardware_divisor(scale);
    let mig = MigrationConfig::default_streak();

    let mut t = Table::new(vec![
        "bench",
        "baseline+migration",
        "HDPAT",
        "HDPAT+migration",
        "pages-migrated",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for b in BENCHES {
        let base_cfg = RunConfig::new(b, scale, PolicyKind::Naive);
        let base = run_maybe_migrating(&base_cfg, None);
        let base_mig = run_maybe_migrating(&base_cfg, Some(mig));
        let hd_cfg = RunConfig::new(b, scale, PolicyKind::hdpat());
        let hd = run_maybe_migrating(&hd_cfg, None);
        let hd_mig = run_maybe_migrating(&hd_cfg, Some(mig));
        let s = [
            base_mig.speedup_vs(&base),
            hd.speedup_vs(&base),
            hd_mig.speedup_vs(&base),
        ];
        for (c, v) in cols.iter_mut().zip(s) {
            c.push(v);
        }
        t.row(vec![
            b.to_string(),
            ratio(s[0]),
            ratio(s[1]),
            ratio(s[2]),
            hd_mig.pages_migrated.to_string(),
        ]);
    }
    let mut gm = vec!["GMEAN".to_string()];
    gm.extend(cols.iter().map(|c| gmean_cell(c)));
    gm.push(String::new());
    t.row(gm);
    emit(
        "Extension: page migration",
        "Streak-based page migration (threshold 16) composed with the baseline \
         and with HDPAT, normalized to the plain baseline.",
        &t,
    );
}
