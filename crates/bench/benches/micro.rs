//! Criterion microbenchmarks for the core data structures: cuckoo filter,
//! TLB, redirection table, mesh routing/reservation, event queue, and
//! workload generation. These quantify the simulator's own hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wsg_gpu::AddressSpace;
use wsg_noc::{Coord, LinkParams, Mesh};
use wsg_sim::{EventQueue, SimRng};
use wsg_workloads::{BenchmarkId, Scale};
use wsg_xlat::{CuckooFilter, PageSize, PageTable, Pfn, RedirectionTable, Tlb, TlbConfig, Vpn};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo_filter");
    g.bench_function("insert", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1) % 40_000;
            black_box(f.insert(k));
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 40_000;
            black_box(f.contains(k));
        });
    });
    g.bench_function("contains_miss", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(f.contains(1_000_000 + k));
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("lookup_hit", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        for v in 0..2048u64 {
            t.fill(Vpn(v), Pfn(v), false);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(t.lookup(Vpn(v)));
        });
    });
    g.bench_function("fill_evict", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(t.fill(Vpn(v), Pfn(v), false));
        });
    });
    g.finish();
}

fn bench_redirection(c: &mut Criterion) {
    let mut g = c.benchmark_group("redirection_table");
    g.bench_function("insert_evict", |b| {
        let mut rt = RedirectionTable::new(1024);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.insert(Vpn(v), (v % 48) as u32);
        });
    });
    g.bench_function("lookup", |b| {
        let mut rt = RedirectionTable::new(1024);
        for v in 0..1024u64 {
            rt.insert(Vpn(v), 0);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(rt.lookup(Vpn(v)));
        });
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.bench_function("send_cross_wafer", |b| {
        let mut mesh = Mesh::new(7, 7, LinkParams::paper_baseline());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(mesh.send(Coord::new(0, 0), Coord::new(6, 6), 64, t));
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(t + 100, t);
            black_box(q.pop());
        });
    });
    // Poisson-ish ramp: a standing population of 4096 events where every pop
    // re-arms one event at a jittered future time drawn from the seeded
    // SimRng — mostly near-future (calendar ring residency and wrap-around),
    // 5% far-future (the sorted overflow level and its migration back into
    // the ring). This is the shape of the simulator's steady-state hot loop.
    c.bench_function("event_queue_ramp", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SimRng::seeded(42);
        for i in 0..4096u64 {
            q.push(rng.gen_range(0..512), i);
        }
        b.iter(|| {
            let (t, p) = q.pop().expect("standing population never drains");
            let delay = if rng.chance(0.05) {
                8_192 + rng.gen_range(0..4_096)
            } else {
                rng.gen_range(0..64)
            };
            q.push(t + delay, p);
            black_box(t);
        });
    });
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.bench_function("translate_hit", |b| {
        let mut pt = PageTable::new();
        for v in 0..65_536u64 {
            pt.map(Vpn(v), Pfn(v), (v % 48) as u32);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 65_536;
            black_box(pt.translate(Vpn(v)));
        });
    });
    g.bench_function("translate_counted", |b| {
        let mut pt = PageTable::new();
        for v in 0..65_536u64 {
            pt.map(Vpn(v), Pfn(v), (v % 48) as u32);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 65_536;
            black_box(pt.translate_counted(Vpn(v)));
        });
    });
    g.bench_function("map_unmap_churn", |b| {
        let mut pt = PageTable::new();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pt.map(Vpn(v), Pfn(v), 0);
            if v >= 4_096 {
                black_box(pt.unmap(Vpn(v - 4_096)));
            }
        });
    });
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("generate_spmv_unit", |b| {
        b.iter(|| {
            let mut space = AddressSpace::new(PageSize::Size4K, 48);
            black_box(wsg_workloads::generate(
                BenchmarkId::Spmv,
                Scale::Unit,
                &mut space,
                42,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_cuckoo,
    bench_tlb,
    bench_redirection,
    bench_mesh,
    bench_event_queue,
    bench_page_table,
    bench_workload_gen
);
criterion_main!(benches);
