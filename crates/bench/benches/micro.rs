//! Criterion microbenchmarks for the core data structures: cuckoo filter,
//! TLB, redirection table, mesh routing/reservation, event queue, and
//! workload generation. These quantify the simulator's own hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wsg_gpu::AddressSpace;
use wsg_noc::{Coord, LinkParams, Mesh};
use wsg_sim::{EventQueue, SimRng};
use wsg_workloads::{BenchmarkId, Scale};
use wsg_xlat::{CuckooFilter, PageSize, PageTable, Pfn, RedirectionTable, Tlb, TlbConfig, Vpn};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo_filter");
    g.bench_function("insert", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1) % 40_000;
            black_box(f.insert(k));
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 40_000;
            black_box(f.contains(k));
        });
    });
    g.bench_function("contains_miss", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(f.contains(1_000_000 + k));
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("lookup_hit", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        for v in 0..2048u64 {
            t.fill(Vpn(v), Pfn(v), false);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(t.lookup(Vpn(v)));
        });
    });
    g.bench_function("fill_evict", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(t.fill(Vpn(v), Pfn(v), false));
        });
    });
    g.finish();
}

fn bench_redirection(c: &mut Criterion) {
    let mut g = c.benchmark_group("redirection_table");
    g.bench_function("insert_evict", |b| {
        let mut rt = RedirectionTable::new(1024);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.insert(Vpn(v), (v % 48) as u32);
        });
    });
    g.bench_function("lookup", |b| {
        let mut rt = RedirectionTable::new(1024);
        for v in 0..1024u64 {
            rt.insert(Vpn(v), 0);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(rt.lookup(Vpn(v)));
        });
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.bench_function("send_cross_wafer", |b| {
        let mut mesh = Mesh::new(7, 7, LinkParams::paper_baseline());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(mesh.send(Coord::new(0, 0), Coord::new(6, 6), 64, t));
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(t + 100, t);
            black_box(q.pop());
        });
    });
    // Poisson-ish ramp: a standing population of 4096 events where every pop
    // re-arms one event at a jittered future time drawn from the seeded
    // SimRng — mostly near-future (calendar ring residency and wrap-around),
    // 5% far-future (the sorted overflow level and its migration back into
    // the ring). This is the shape of the simulator's steady-state hot loop.
    c.bench_function("event_queue_ramp", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SimRng::seeded(42);
        for i in 0..4096u64 {
            q.push(rng.gen_range(0..512), i);
        }
        b.iter(|| {
            let (t, p) = q.pop().expect("standing population never drains");
            let delay = if rng.chance(0.05) {
                8_192 + rng.gen_range(0..4_096)
            } else {
                rng.gen_range(0..64)
            };
            q.push(t + delay, p);
            black_box(t);
        });
    });
}

/// The SoA TLB's mask-guided set probe (DESIGN.md §16): full paper-L2 sets
/// probed at every way position, plus the all-ways-scanned miss — the two
/// shapes the contiguous tag-plane walk is built for.
fn bench_tlb_soa_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb_soa");
    let cfg = TlbConfig::paper_l2();
    g.bench_function("set_probe_hit", |b| {
        let mut t = Tlb::new(cfg);
        // Fill one set completely: VPNs congruent mod `sets` land together.
        for w in 0..cfg.ways as u64 {
            t.fill(Vpn(w * cfg.sets as u64), Pfn(w), false);
        }
        let mut w = 0u64;
        b.iter(|| {
            w = (w + 1) % cfg.ways as u64;
            black_box(t.probe(Vpn(w * cfg.sets as u64)));
        });
    });
    g.bench_function("set_probe_miss_full_set", |b| {
        let mut t = Tlb::new(cfg);
        for w in 0..cfg.ways as u64 {
            t.fill(Vpn(w * cfg.sets as u64), Pfn(w), false);
        }
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            // Same set, absent tag: the probe walks every valid way.
            black_box(t.probe(Vpn((cfg.ways as u64 + v) * cfg.sets as u64)));
        });
    });
    g.finish();
}

/// The batched engine loop's queue shape (DESIGN.md §16): the same standing
/// population as `event_queue_ramp`, consumed a whole calendar bucket at a
/// time with every drained event re-armed — `drain_bucket` amortizing the
/// bitmap scan and clock advance over the bucket, vs the per-pop baseline
/// above it.
fn bench_event_queue_batch(c: &mut Criterion) {
    c.bench_function("event_queue_batch_drain_ramp", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SimRng::seeded(42);
        for i in 0..4096u64 {
            q.push(rng.gen_range(0..512), i);
        }
        let mut bucket = Vec::new();
        b.iter(|| {
            bucket.clear();
            let n = q.drain_bucket(&mut bucket);
            assert!(n > 0, "standing population never drains");
            let t = q.now();
            for &p in &bucket {
                let delay = if rng.chance(0.05) {
                    8_192 + rng.gen_range(0..4_096)
                } else {
                    rng.gen_range(0..64)
                };
                q.push(t + delay.max(1), p);
            }
            black_box(n);
        });
    });
}

/// Index-based vs handle-based component dispatch: the same counter bump
/// routed through a plain pre-sized slab (`Vec<Comp>` + usize index, the
/// engine's layout after the PR-9 rework) and through per-component
/// `Rc<RefCell<..>>` handles (the layout the rework removed from the hot
/// path; still the right tool at the d7 observability-sink boundary).
fn bench_dispatch_indexing(c: &mut Criterion) {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Comp {
        hits: u64,
        stamp: u64,
    }
    const N: usize = 48;
    let mut g = c.benchmark_group("dispatch");
    g.bench_function("slab_index", |b| {
        let mut comps: Vec<Comp> = (0..N).map(|_| Comp { hits: 0, stamp: 0 }).collect();
        let mut i = 0usize;
        let mut t = 0u64;
        b.iter(|| {
            i = (i + 17) % N;
            t += 1;
            let comp = &mut comps[i];
            comp.hits += 1;
            comp.stamp = t;
            black_box(comp.hits);
        });
    });
    g.bench_function("rc_refcell_handle", |b| {
        let comps: Vec<Rc<RefCell<Comp>>> = (0..N)
            .map(|_| Rc::new(RefCell::new(Comp { hits: 0, stamp: 0 })))
            .collect();
        let handles: Vec<Rc<RefCell<Comp>>> = comps.iter().map(Rc::clone).collect();
        let mut i = 0usize;
        let mut t = 0u64;
        b.iter(|| {
            i = (i + 17) % N;
            t += 1;
            let mut comp = handles[i].borrow_mut();
            comp.hits += 1;
            comp.stamp = t;
            black_box(comp.hits);
        });
    });
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.bench_function("translate_hit", |b| {
        let mut pt = PageTable::new();
        for v in 0..65_536u64 {
            pt.map(Vpn(v), Pfn(v), (v % 48) as u32);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 65_536;
            black_box(pt.translate(Vpn(v)));
        });
    });
    g.bench_function("translate_counted", |b| {
        let mut pt = PageTable::new();
        for v in 0..65_536u64 {
            pt.map(Vpn(v), Pfn(v), (v % 48) as u32);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 65_536;
            black_box(pt.translate_counted(Vpn(v)));
        });
    });
    g.bench_function("map_unmap_churn", |b| {
        let mut pt = PageTable::new();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            pt.map(Vpn(v), Pfn(v), 0);
            if v >= 4_096 {
                black_box(pt.unmap(Vpn(v - 4_096)));
            }
        });
    });
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("generate_spmv_unit", |b| {
        b.iter(|| {
            let mut space = AddressSpace::new(PageSize::Size4K, 48);
            black_box(wsg_workloads::generate(
                BenchmarkId::Spmv,
                Scale::Unit,
                &mut space,
                42,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_cuckoo,
    bench_tlb,
    bench_redirection,
    bench_mesh,
    bench_event_queue,
    bench_tlb_soa_probe,
    bench_event_queue_batch,
    bench_dispatch_indexing,
    bench_page_table,
    bench_workload_gen
);
criterion_main!(benches);
