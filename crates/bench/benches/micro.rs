//! Criterion microbenchmarks for the core data structures: cuckoo filter,
//! TLB, redirection table, mesh routing/reservation, event queue, and
//! workload generation. These quantify the simulator's own hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wsg_gpu::AddressSpace;
use wsg_noc::{Coord, LinkParams, Mesh};
use wsg_sim::EventQueue;
use wsg_workloads::{BenchmarkId, Scale};
use wsg_xlat::{CuckooFilter, PageSize, Pfn, RedirectionTable, Tlb, TlbConfig, Vpn};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo_filter");
    g.bench_function("insert", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1) % 40_000;
            black_box(f.insert(k));
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 40_000;
            black_box(f.contains(k));
        });
    });
    g.bench_function("contains_miss", |b| {
        let mut f = CuckooFilter::with_capacity(1 << 16);
        for k in 0..40_000u64 {
            f.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(f.contains(1_000_000 + k));
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("lookup_hit", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        for v in 0..2048u64 {
            t.fill(Vpn(v), Pfn(v), false);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(t.lookup(Vpn(v)));
        });
    });
    g.bench_function("fill_evict", |b| {
        let mut t = Tlb::new(TlbConfig::paper_l2());
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(t.fill(Vpn(v), Pfn(v), false));
        });
    });
    g.finish();
}

fn bench_redirection(c: &mut Criterion) {
    let mut g = c.benchmark_group("redirection_table");
    g.bench_function("insert_evict", |b| {
        let mut rt = RedirectionTable::new(1024);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.insert(Vpn(v), (v % 48) as u32);
        });
    });
    g.bench_function("lookup", |b| {
        let mut rt = RedirectionTable::new(1024);
        for v in 0..1024u64 {
            rt.insert(Vpn(v), 0);
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 2048;
            black_box(rt.lookup(Vpn(v)));
        });
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.bench_function("send_cross_wafer", |b| {
        let mut mesh = Mesh::new(7, 7, LinkParams::paper_baseline());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(mesh.send(Coord::new(0, 0), Coord::new(6, 6), 64, t));
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(t + 100, t);
            black_box(q.pop());
        });
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("generate_spmv_unit", |b| {
        b.iter(|| {
            let mut space = AddressSpace::new(PageSize::Size4K, 48);
            black_box(wsg_workloads::generate(
                BenchmarkId::Spmv,
                Scale::Unit,
                &mut space,
                42,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_cuckoo,
    bench_tlb,
    bench_redirection,
    bench_mesh,
    bench_event_queue,
    bench_workload_gen
);
criterion_main!(benches);
