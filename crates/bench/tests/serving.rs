//! Shape tests for the serving client library: mix generation, the replay
//! digest, and persistent-cache attribution across daemon instances.

use wsg_bench::serving;
use wsg_sim::pool::default_jobs;

use hdpat::serve::json::Json;
use hdpat::serve::DaemonConfig;
use wsg_workloads::Scale;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hdpat-serving-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fig14 mix is one submit line per figure point, ids q0001…q0070, and
/// every line parses as a valid request.
#[test]
fn fig14_mix_is_the_full_figure_point_set() {
    let mix = serving::fig14_mix(Scale::Unit, 42);
    let lines: Vec<&str> = mix.lines().collect();
    assert_eq!(lines.len(), 70, "14 benchmarks x 5 policies");
    for (i, line) in lines.iter().enumerate() {
        let v = Json::parse(line).expect("mix line is valid JSON");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(
            v.get("id").and_then(Json::as_str),
            Some(format!("q{:04}", i + 1).as_str())
        );
        hdpat::serve::Request::parse(line).expect("mix line parses as a request");
    }
}

/// The mix resolves to exactly the fig14 sweep configurations, so a disk
/// cache populated by serving the mix is hit by `figure fig14` and vice
/// versa. Guards the policy-token <-> PolicyKind agreement.
#[test]
fn fig14_mix_fingerprints_match_the_figure_sweep() {
    let configs = serving::fig14_configs(Scale::Unit, 42);
    assert_eq!(configs.len(), 70);
    let mix = serving::fig14_mix(Scale::Unit, 42);
    for (line, cfg) in mix.lines().zip(&configs) {
        let req = hdpat::serve::Request::parse(line).unwrap();
        match req {
            hdpat::serve::Request::Submit(s) => {
                assert_eq!(s.run_config().fingerprint(), cfg.fingerprint());
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }
    // All 70 points are distinct cache entries.
    let fps: std::collections::BTreeSet<String> = configs.iter().map(|c| c.fingerprint()).collect();
    assert_eq!(fps.len(), 70);
}

/// Batch replay against a fresh disk cache simulates everything; a second
/// replay by a *new* daemon over the same directory answers entirely from
/// disk, and the deterministic digest is byte-identical.
#[test]
fn replay_twice_hits_disk_and_digests_identically() {
    let dir = tmpdir("replay-twice");
    let mix: String = serving::fig14_mix(Scale::Unit, 42)
        .lines()
        .take(6)
        .map(|l| format!("{l}\n"))
        .collect();
    let config = DaemonConfig {
        jobs: default_jobs().min(4),
        cache_dir: Some(dir.clone()),
        ..DaemonConfig::default()
    };
    let first = serving::replay_batch(&mix, config.clone()).unwrap();
    let (digest1, stats1) = serving::digest(&first);
    assert_eq!(stats1.results, 6);
    assert_eq!(stats1.simulated, 6, "cold cache simulates everything");
    assert_eq!(stats1.errors, 0);

    let second = serving::replay_batch(&mix, config).unwrap();
    let (digest2, stats2) = serving::digest(&second);
    assert_eq!(stats2.results, 6);
    assert_eq!(stats2.disk, 6, "warm cache answers everything from disk");
    assert_eq!(stats2.simulated, 0);
    assert_eq!(digest1, digest2, "digest is independent of the source");
    assert!(digest1.contains("=== q0001 "));
    assert!(digest1.contains("total_cycles: "));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The digest separates deterministic payload from attribution side-band:
/// progress and control lines never land in the artifact.
#[test]
fn digest_skips_side_band_lines() {
    let lines = vec![
        r#"{"type":"progress","id":"a","state":"started"}"#.to_string(),
        r#"{"type":"error","id":"a","code":"unknown-policy","message":"no"}"#.to_string(),
        r#"{"type":"status","queued":0,"running":0,"completed":1,"clients":1}"#.to_string(),
        r#"{"type":"shutdown-ack","drained":0}"#.to_string(),
    ];
    let (artifact, stats) = serving::digest(&lines);
    assert_eq!(artifact, "=== a error unknown-policy\n");
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.results, 0);
}

/// The stats JSON renders every counter and is parseable by the bundled
/// JSON parser (what the CI lane greps came from a machine-readable doc).
#[test]
fn stats_json_is_valid_and_complete() {
    let stats = serving::ReplayStats {
        results: 70,
        errors: 1,
        simulated: 50,
        memory: 5,
        disk: 15,
    };
    let doc = stats.to_json(2.5);
    let v = Json::parse(doc.trim()).expect("stats JSON parses");
    assert_eq!(v.get("results").and_then(Json::as_u64), Some(70));
    let sources = v.get("sources").expect("sources object");
    assert_eq!(sources.get("disk").and_then(Json::as_u64), Some(15));
    assert_eq!(sources.get("memory").and_then(Json::as_u64), Some(5));
    assert_eq!(sources.get("simulated").and_then(Json::as_u64), Some(50));
}
