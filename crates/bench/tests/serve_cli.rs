//! End-to-end tests of the serving CLI surface, driving the real
//! `hdpat-sim` binary in separate processes: cross-process persistence of
//! the run cache, the stdio daemon, the replay harness, and the PROTOCOL.md
//! drift gate.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_hdpat-sim");

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdpat-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(BIN).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "hdpat-sim {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The headline acceptance check: `figure fig14` in two *separate
/// processes* over one `--cache-dir`. The second process simulates nothing,
/// answers every point from disk, and prints byte-identical stdout.
#[test]
fn figure_fig14_is_byte_identical_across_processes() {
    let dir = tmpdir("fig14");
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap();
    let args = [
        "figure",
        "fig14",
        "--scale",
        "unit",
        "--jobs",
        "4",
        "--cache-dir",
        cache_s,
    ];
    let cold = run(&args);
    let warm = run(&args);
    assert_eq!(
        cold.stdout, warm.stdout,
        "figure output must not depend on the cache state"
    );
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 simulation(s) executed"),
        "warm process must simulate nothing: {warm_err}"
    );
    assert!(
        warm_err.contains("70 disk hit(s)"),
        "warm process must answer all 70 points from disk: {warm_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `serve --stdio` answers submits on stdout and drains at EOF; a daemon
/// restarted on the same cache directory attributes the repeat to disk.
#[test]
fn serve_stdio_round_trips_and_persists() {
    let dir = tmpdir("stdio");
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap().to_string();
    let submit =
        r#"{"op":"submit","id":"j1","benchmark":"AES","policy":"naive","scale":"unit","seed":7}"#;
    let serve_once = |input: &str| -> String {
        let mut child = Command::new(BIN)
            .args(["serve", "--stdio", "--jobs", "2", "--cache-dir", &cache_s])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let first = serve_once(&format!("{submit}\n"));
    assert!(
        first.contains(r#""type":"result","id":"j1","source":"simulated""#),
        "cold daemon simulates: {first}"
    );
    let second = serve_once(&format!("{submit}\n"));
    assert!(
        second.contains(r#""type":"result","id":"j1","source":"disk""#),
        "restarted daemon answers from disk: {second}"
    );
    // The deterministic payload is identical either way.
    let strip = |s: &str| s.replace(r#""source":"simulated""#, r#""source":"disk""#);
    assert_eq!(strip(&first), second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `emit-mix` + `replay` round trip: batch replay writes the digest and
/// stats artifacts; replaying again hits the persistent cache.
#[test]
fn replay_cli_writes_digest_and_stats() {
    let dir = tmpdir("replay");
    let mix = dir.join("mix.ndjson");
    let mix_s = mix.to_str().unwrap().to_string();
    run(&["emit-mix", "fig14", "--scale", "unit", "--out", &mix_s]);
    let full = std::fs::read_to_string(&mix).unwrap();
    let subset: String = full.lines().take(4).map(|l| format!("{l}\n")).collect();
    std::fs::write(&mix, &subset).unwrap();

    let cache = dir.join("cache");
    let out1 = dir.join("d1.txt");
    let out2 = dir.join("d2.txt");
    let stats2 = dir.join("s2.json");
    let base = [
        "replay",
        &mix_s,
        "--jobs",
        "2",
        "--cache-dir",
        cache.to_str().unwrap(),
    ];
    let mut a1: Vec<&str> = base.to_vec();
    a1.extend(["--out", out1.to_str().unwrap()]);
    run(&a1);
    let mut a2: Vec<&str> = base.to_vec();
    a2.extend([
        "--out",
        out2.to_str().unwrap(),
        "--stats-out",
        stats2.to_str().unwrap(),
    ]);
    run(&a2);

    let d1 = std::fs::read_to_string(&out1).unwrap();
    let d2 = std::fs::read_to_string(&out2).unwrap();
    assert_eq!(d1, d2, "digest is cache-state independent");
    assert_eq!(d1.matches("=== ").count(), 4);
    let stats = std::fs::read_to_string(&stats2).unwrap();
    assert!(
        stats.contains("\"disk\": 4"),
        "second replay served from disk: {stats}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The PROTOCOL.md drift gate: the worked examples in the committed doc
/// are exactly what the wire builders emit today.
#[test]
fn protocol_doc_examples_are_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md");
    let out = run(&["regen-protocol", "--check", "--path", path]);
    let msg = String::from_utf8_lossy(&out.stdout);
    assert!(msg.contains("up to date"), "{msg}");
}
