//! A toy *threaded* conservative-lookahead PDES built from the PR 8
//! primitives: one worker thread per shard, each owning a [`ShardQueue`],
//! exchanging cross-shard messages through mailboxes at
//! [`ShardBarrier`]-synchronized window boundaries under
//! [`run_sharded_workers`].
//!
//! The engine's sharded drive (`hdpat`) executes windows on one thread in
//! merged order — the observability sinks are not `Send` — so this test is
//! what keeps the *cross-thread* window/barrier/mailbox protocol honest:
//! conservation (every injected and forwarded message is delivered exactly
//! once), the lookahead bound (no message arrives inside the window it was
//! sent in), and in-window delivery order per shard.

use std::sync::Mutex;

use wsg_sim::pool::{run_sharded_workers, ShardBarrier};
use wsg_sim::shard::ShardQueue;

const SHARDS: usize = 4;
const LOOKAHEAD: u64 = 7;
/// Messages seeded into each shard's queue at t = 0..SEEDS.
const SEEDS: u64 = 24;
/// Each delivery below this generation forwards one message to the next
/// shard, due `LOOKAHEAD` after the end of the current window (the
/// conservative bound a real mesh hop satisfies).
const GENERATIONS: u32 = 5;

#[derive(Clone, Copy)]
struct Msg {
    origin: usize,
    generation: u32,
}

/// One shard's published outbound traffic: index `[dest]` holds
/// `(due time, message)` pairs.
type Mailboxes = Vec<Vec<(u64, Msg)>>;

#[test]
fn threaded_windows_conserve_messages_and_respect_lookahead() {
    let mailboxes: Vec<Mutex<Mailboxes>> = (0..SHARDS)
        .map(|_| Mutex::new(vec![Vec::new(); SHARDS]))
        .collect();
    let delivered: Vec<Mutex<Vec<(u64, usize, u32)>>> =
        (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect();
    let sent = Mutex::new(vec![0u64; SHARDS]);
    // Per-shard "still has work" votes for distributed termination.
    let active = Mutex::new(vec![true; SHARDS]);

    run_sharded_workers(SHARDS, |me, barrier: &ShardBarrier| {
        let mut queue: ShardQueue<Msg> = ShardQueue::new();
        for t in 0..SEEDS {
            queue.push(
                t,
                t,
                Msg {
                    origin: me,
                    generation: 0,
                },
            );
        }
        let mut window_start = 0u64;
        let mut stamp = SEEDS;
        let mut outbound: Mailboxes = vec![Vec::new(); SHARDS];
        let mut my_sent = 0u64;
        loop {
            let window_end = window_start + LOOKAHEAD;
            // Drain this shard's window [window_start, window_end).
            let mut last = window_start;
            while queue.peek().is_some_and(|(t, _)| t < window_end) {
                let (t, _stamp, msg) = match queue.pop() {
                    Some(entry) => entry,
                    None => unreachable!("peek said non-empty"),
                };
                assert!(t >= last, "shard {me} delivered out of order");
                last = t;
                delivered[me]
                    .lock()
                    .unwrap()
                    .push((t, msg.origin, msg.generation));
                if msg.generation < GENERATIONS {
                    // Forward to the neighbour, due one lookahead past the
                    // current window boundary: always legal conservatively.
                    let dest = (me + 1) % SHARDS;
                    outbound[dest].push((
                        window_end + LOOKAHEAD - 1,
                        Msg {
                            origin: msg.origin,
                            generation: msg.generation + 1,
                        },
                    ));
                    my_sent += 1;
                }
            }
            // Publish outbound traffic, then barrier: after it, every
            // shard's window-N mail is visible to its destination.
            {
                let mut slots = mailboxes[me].lock().unwrap();
                for (dest, mail) in outbound.iter_mut().enumerate() {
                    slots[dest].append(mail);
                }
            }
            barrier.wait().expect("no shard panics in this test");
            // Collect mail addressed to us from every shard's mailboxes.
            for sender in &mailboxes {
                let mut slots = sender.lock().unwrap();
                for (t, msg) in slots[me].drain(..) {
                    assert!(
                        t >= window_end,
                        "lookahead violated: mail for t={t} inside window ending {window_end}"
                    );
                    queue.push(t, stamp, msg);
                    stamp += 1;
                }
            }
            // Distributed termination: publish this shard's vote, barrier,
            // then read the frozen unanimous decision — every shard reads
            // the same array (no one can write again without first passing
            // the next barrier), so all break or none do.
            active.lock().unwrap()[me] = !queue.is_empty();
            barrier.wait().expect("no shard panics in this test");
            if active.lock().unwrap().iter().all(|a| !a) {
                break;
            }
            window_start = window_end;
        }
        sent.lock().unwrap()[me] = my_sent;
    });

    // Conservation: every seed plus every forward was delivered exactly once.
    let total_sent: u64 = sent.lock().unwrap().iter().sum();
    let total_delivered: usize = delivered.iter().map(|d| d.lock().unwrap().len()).sum();
    assert_eq!(
        total_delivered as u64,
        SHARDS as u64 * SEEDS + total_sent,
        "messages lost or duplicated across windows"
    );
    // Every origin chain ran to its final generation: each seed spawns
    // exactly GENERATIONS forwards, one per hop.
    assert_eq!(total_sent, SHARDS as u64 * SEEDS * GENERATIONS as u64);
    // Each shard's delivery log is globally time-sorted (windows advance
    // monotonically and each window drains in order).
    for (shard, log) in delivered.iter().enumerate() {
        let log = log.lock().unwrap();
        assert!(
            log.windows(2).all(|w| w[0].0 <= w[1].0),
            "shard {shard} delivery log is not time-sorted"
        );
    }
}
