//! Structural-equivalence proptests for the PR 4 hot-loop replacements
//! (DESIGN.md §11): the calendar [`EventQueue`] must pop in exactly the order
//! the original `BinaryHeap` implementation did, and [`HashIndex`] must be
//! observationally identical to the `BTreeMap`s it replaced.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use proptest::prelude::*;
use wsg_sim::{EventQueue, HashIndex};

/// Reference model: the pre-PR-4 `BinaryHeap` event queue. Entries are
/// ordered by `(time, insertion seq)`; `now` is the last popped timestamp.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    now: u64,
    seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    fn push(&mut self, time: u64, payload: u64) {
        self.heap.push(Reverse((time, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let Reverse((time, _, payload)) = self.heap.pop()?;
        self.now = time;
        Some((time, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical push sequences produce identical pop sequences, interleaved
    /// pops included. Deltas span the calendar ring horizon on both sides, so
    /// ring buckets, wrap-around, and the far-future overflow heap are all
    /// exercised against the heap model.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in proptest::collection::vec((0u64..4, 0u64..10_000), 1..600)
    ) {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (id, &(kind, delta)) in ops.iter().enumerate() {
            match kind {
                // Near-future push: lands in the ring (delta < horizon).
                0 => {
                    cal.push(cal.now() + delta % 64, id as u64);
                    heap.push(heap.now + delta % 64, id as u64);
                }
                1 => {
                    cal.push(cal.now() + delta, id as u64);
                    heap.push(heap.now + delta, id as u64);
                }
                // Far-future push: forces the overflow path and later
                // migration back into the ring.
                2 => {
                    cal.push(cal.now() + delta * 50, id as u64);
                    heap.push(heap.now + delta * 50, id as u64);
                }
                _ => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            prop_assert_eq!(cal.len(), heap.heap.len());
            prop_assert_eq!(cal.now(), heap.now);
        }
        // Drain both completely; order must stay identical to the end.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Same-cycle events pop in insertion order even when the insertions are
    /// split across ring residence and overflow migration.
    #[test]
    fn calendar_queue_preserves_fifo_ties(
        times in proptest::collection::vec(0u64..12_288, 1..300)
    ) {
        let mut cal: EventQueue<usize> = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, i);
            heap.push(t, i as u64);
        }
        while let Some((t, i)) = cal.pop() {
            let (ht, hi) = heap.pop().expect("heap drained early");
            prop_assert_eq!((t, i as u64), (ht, hi));
        }
        prop_assert_eq!(heap.pop(), None);
    }

    /// `HashIndex` behaves exactly like a `BTreeMap<u64, u64>` under any
    /// interleaving of insert / remove / get / get_or_insert_with, and its
    /// sorted iteration is the `BTreeMap` iteration.
    #[test]
    fn hash_index_matches_btreemap(
        ops in proptest::collection::vec((0u64..5, 0u64..48, 0u64..1000), 1..500)
    ) {
        let mut ix: HashIndex<u64> = HashIndex::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &(kind, key, val) in &ops {
            match kind {
                0 => {
                    prop_assert_eq!(ix.insert(key, val), model.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(ix.remove(key), model.remove(&key));
                }
                2 => {
                    prop_assert_eq!(ix.get(key), model.get(&key));
                }
                3 => {
                    let a = ix.get_or_insert_with(key, || val);
                    let b = model.entry(key).or_insert(val);
                    prop_assert_eq!(&*a, &*b);
                    *a += 1;
                    *b += 1;
                }
                _ => {
                    prop_assert_eq!(ix.contains_key(key), model.contains_key(&key));
                }
            }
            prop_assert_eq!(ix.len(), model.len());
        }
        let sorted: Vec<(u64, u64)> = ix.iter_sorted().map(|(k, v)| (k, *v)).collect();
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(sorted, expect);
        let keys: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(ix.keys_sorted(), keys);
        let sum: u64 = model.values().sum();
        prop_assert_eq!(ix.fold_values(0u64, |a, v| a + v), sum);
    }
}
