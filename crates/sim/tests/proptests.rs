//! Property-based tests for the simulation engine primitives.

use proptest::prelude::*;
use wsg_sim::stats::{geo_mean, Histogram, LogHistogram, Summary, TimeSeries};
use wsg_sim::{EventQueue, ServerPool};

proptest! {
    /// Events pop in nondecreasing time order regardless of push order, and
    /// nothing is lost.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::new();
        let mut last = 0u64;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Ties preserve insertion order.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// A k-server pool never runs more than k jobs concurrently and never
    /// starts a job before its arrival.
    #[test]
    fn server_pool_respects_capacity(
        k in 1usize..8,
        jobs in proptest::collection::vec((0u64..1000, 1u64..100), 1..100)
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut pool = ServerPool::new(k);
        let mut intervals = Vec::new();
        for (arrival, service) in sorted {
            let (start, done) = pool.admit(arrival, service);
            prop_assert!(start >= arrival);
            prop_assert_eq!(done, start + service);
            intervals.push((start, done));
        }
        // At any job start, at most k-1 other jobs overlap.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= k, "{overlapping} jobs at once with k={k}");
        }
    }

    /// Histogram counts are conserved across buckets + overflow.
    #[test]
    fn histogram_conserves_samples(
        width in 1u64..50,
        buckets in 1usize..20,
        samples in proptest::collection::vec(0u64..2000, 0..200)
    ) {
        let mut h = Histogram::new(width, buckets);
        for &s in &samples {
            h.record(s);
        }
        let bucketed: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucketed + h.overflow(), samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
        if let Some(&max) = samples.iter().max() {
            prop_assert_eq!(h.max(), max);
        }
    }

    /// Log-histogram bucket bounds contain their samples.
    #[test]
    fn log_histogram_buckets_contain_samples(samples in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, samples.len() as u64);
        // Buckets are sorted by lower bound.
        let bounds: Vec<u64> = h.iter().map(|(lo, _)| lo).collect();
        for w in bounds.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Time-series total equals the number of recorded samples and windows
    /// tile time contiguously.
    #[test]
    fn time_series_tiles_time(window in 1u64..1000, samples in proptest::collection::vec(0u64..100_000, 1..100)) {
        let mut ts = TimeSeries::new(window);
        for &t in &samples {
            ts.record(t, 1);
        }
        prop_assert_eq!(ts.total_count(), samples.len() as u64);
        let starts: Vec<u64> = ts.windows().map(|w| w.start).collect();
        for (i, &s) in starts.iter().enumerate() {
            prop_assert_eq!(s, i as u64 * window);
        }
    }

    /// Summary mean lies within [min, max].
    #[test]
    fn summary_mean_is_bounded(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = Summary::new();
        for &v in &samples {
            s.record(v);
        }
        let (min, max) = (s.min().unwrap(), s.max().unwrap());
        prop_assert!(min <= s.mean() + 1e-9 && s.mean() <= max + 1e-9);
    }

    /// Geometric mean lies between min and max of positive inputs.
    #[test]
    fn geo_mean_is_bounded(samples in proptest::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geo_mean(&samples).unwrap();
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    /// Merging summaries equals recording the concatenation.
    #[test]
    fn summary_merge_is_concatenation(
        a in proptest::collection::vec(-100f64..100.0, 0..50),
        b in proptest::collection::vec(-100f64..100.0, 0..50)
    ) {
        let mut sa = Summary::new();
        for &v in &a { sa.record(v); }
        let mut sb = Summary::new();
        for &v in &b { sb.record(v); }
        let mut merged = sa.clone();
        merged.merge(&sb);

        let mut all = Summary::new();
        for &v in a.iter().chain(&b) { all.record(v); }
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.sum() - all.sum()).abs() < 1e-6);
        prop_assert_eq!(merged.min(), all.min());
        prop_assert_eq!(merged.max(), all.max());
    }
}
