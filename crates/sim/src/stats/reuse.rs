//! Reuse-distance measurement over a request stream.

use super::LogHistogram;
use crate::index::HashIndex;

/// Measures, for a stream of keyed requests, the number of *other* requests
/// between two occurrences of the same key — the reuse distance of
/// observation O3 (Fig 7) — together with per-key occurrence counts (Fig 6).
///
/// The distance recorded is a stream distance (requests since last
/// occurrence), matching the paper's "distribution of access counts between
/// repeated address translation requests".
///
/// # Example
///
/// ```
/// let mut t = wsg_sim::stats::ReuseTracker::new();
/// t.touch(7);
/// t.touch(9);
/// t.touch(7); // one other request (key 9) in between
/// assert_eq!(t.occurrences(7), 2);
/// assert_eq!(t.reuse_histogram().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseTracker {
    // A seeded HashIndex, never iterated (lint rules d1/d6).
    last_seen: HashIndex<u64>,
    // Seeded HashIndex too: every aggregation over it (histogram sums,
    // repeat fraction) is order-free, so no sorted traversal is needed.
    counts: HashIndex<u64>,
    position: u64,
    reuse: LogHistogram,
}

impl ReuseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `key` and, if it has been seen before,
    /// records its reuse distance.
    pub fn touch(&mut self, key: u64) {
        if let Some(prev) = self.last_seen.insert(key, self.position) {
            // Requests strictly between the two occurrences.
            self.reuse.record(self.position - prev - 1);
        }
        *self.counts.get_or_insert_with(key, || 0) += 1;
        self.position += 1;
    }

    /// Number of times `key` has been touched.
    pub fn occurrences(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Histogram of reuse distances over all repeated keys.
    pub fn reuse_histogram(&self) -> &LogHistogram {
        &self.reuse
    }

    /// Histogram of per-key occurrence counts (Fig 6's distribution of
    /// translation counts).
    pub fn count_histogram(&self) -> LogHistogram {
        self.counts.fold_values(LogHistogram::new(), |mut h, &c| {
            h.record(c);
            h
        })
    }

    /// Number of distinct keys seen.
    pub fn distinct_keys(&self) -> usize {
        self.counts.len()
    }

    /// Total number of touches.
    pub fn total_touches(&self) -> u64 {
        self.position
    }

    /// Per-key occurrence counts in ascending key order. Together with
    /// [`ReuseTracker::total_touches`] and [`ReuseTracker::reuse_histogram`]
    /// this exposes every aggregate the tracker reports, for exact
    /// serialization by the disk run cache.
    pub fn counts_sorted(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter_sorted().map(|(k, &v)| (k, v))
    }

    /// Rebuilds a tracker from previously captured state — the inverse of
    /// reading [`ReuseTracker::counts_sorted`],
    /// [`ReuseTracker::total_touches`] (as `position`) and
    /// [`ReuseTracker::reuse_histogram`].
    ///
    /// The restored tracker is **read-only in spirit**: every aggregate
    /// accessor (`occurrences`, `count_histogram`, `repeat_fraction`,
    /// `distinct_keys`, `total_touches`, `reuse_histogram`) reports exactly
    /// what the original did, but the last-seen positions are deliberately
    /// not captured, so calling [`ReuseTracker::touch`] on a restored tracker
    /// would record wrong reuse distances. Cached metrics are never touched
    /// again, so the smaller encoding wins.
    pub fn from_parts(
        counts: impl IntoIterator<Item = (u64, u64)>,
        position: u64,
        reuse: LogHistogram,
    ) -> Self {
        let mut index = HashIndex::new();
        for (k, v) in counts {
            index.insert(k, v);
        }
        Self {
            last_seen: HashIndex::new(),
            counts: index,
            position,
            reuse,
        }
    }

    /// Fraction of keys touched more than once.
    pub fn repeat_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let repeated = self
            .counts
            .fold_values(0usize, |n, &c| if c > 1 { n + 1 } else { n });
        repeated as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_occurrences() {
        let mut t = ReuseTracker::new();
        t.touch(1);
        t.touch(1);
        t.touch(2);
        assert_eq!(t.occurrences(1), 2);
        assert_eq!(t.occurrences(2), 1);
        assert_eq!(t.occurrences(3), 0);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.total_touches(), 3);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut t = ReuseTracker::new();
        t.touch(5);
        t.touch(5);
        let h = t.reuse_histogram();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn distance_counts_intervening_requests() {
        let mut t = ReuseTracker::new();
        t.touch(1);
        for k in 2..=100 {
            t.touch(k);
        }
        t.touch(1);
        assert_eq!(t.reuse_histogram().max(), 99);
    }

    #[test]
    fn repeat_fraction() {
        let mut t = ReuseTracker::new();
        t.touch(1);
        t.touch(1);
        t.touch(2);
        t.touch(3);
        t.touch(4);
        assert!((t.repeat_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn count_histogram_reflects_multiplicity() {
        let mut t = ReuseTracker::new();
        t.touch(1); // once
        for _ in 0..8 {
            t.touch(2); // eight times
        }
        let h = t.count_histogram();
        assert_eq!(h.count(), 2);
        // 1 key in bucket {1}, 1 key in bucket [8,16).
        assert_eq!(h.bucket_for(8), 3);
    }

    #[test]
    fn from_parts_round_trips_aggregates() {
        let mut t = ReuseTracker::new();
        for k in [1, 2, 1, 3, 1, 2, 9] {
            t.touch(k);
        }
        let reuse = t.reuse_histogram();
        let rebuilt = ReuseTracker::from_parts(
            t.counts_sorted(),
            t.total_touches(),
            LogHistogram::from_parts(
                reuse.raw_buckets().to_vec(),
                reuse.count(),
                reuse.raw_sum(),
                reuse.max(),
            ),
        );
        assert_eq!(rebuilt.total_touches(), t.total_touches());
        assert_eq!(rebuilt.distinct_keys(), t.distinct_keys());
        for k in [1, 2, 3, 9, 42] {
            assert_eq!(rebuilt.occurrences(k), t.occurrences(k));
        }
        assert_eq!(
            rebuilt.repeat_fraction().to_bits(),
            t.repeat_fraction().to_bits()
        );
        assert_eq!(
            rebuilt.count_histogram().iter().collect::<Vec<_>>(),
            t.count_histogram().iter().collect::<Vec<_>>()
        );
        assert_eq!(
            rebuilt.reuse_histogram().iter().collect::<Vec<_>>(),
            t.reuse_histogram().iter().collect::<Vec<_>>()
        );
        assert_eq!(
            rebuilt.counts_sorted().collect::<Vec<_>>(),
            t.counts_sorted().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_tracker() {
        let t = ReuseTracker::new();
        assert_eq!(t.repeat_fraction(), 0.0);
        assert_eq!(t.distinct_keys(), 0);
    }
}
