//! Named-component breakdowns.

use std::fmt;

/// Accumulates values under a small set of named components and reports each
/// component's share.
///
/// Backs the IOMMU latency breakdown of Fig 3 (`pre-queue`, `ptw-queue`,
/// `walk`) and the resolution-source breakdown of Fig 16 (`peer-cache`,
/// `redirection`, `proactive`, `iommu`).
///
/// # Example
///
/// ```
/// let mut b = wsg_sim::stats::Breakdown::new(&["wait", "service"]);
/// b.add("wait", 30);
/// b.add("service", 70);
/// assert_eq!(b.total(), 100);
/// assert!((b.share("wait") - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Breakdown {
    names: Vec<&'static str>,
    values: Vec<u64>,
    samples: u64,
}

impl Breakdown {
    /// Creates a breakdown over the given component names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn new(names: &[&'static str]) -> Self {
        assert!(!names.is_empty(), "breakdown needs at least one component");
        Self {
            names: names.to_vec(),
            values: vec![0; names.len()],
            samples: 0,
        }
    }

    fn idx(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown breakdown component `{name}`"))
    }

    /// Adds `value` to the component `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the components passed to [`Breakdown::new`].
    pub fn add(&mut self, name: &str, value: u64) {
        let i = self.idx(name);
        self.values[i] += value;
        self.samples += 1;
    }

    /// Value accumulated under `name`.
    pub fn value(&self, name: &str) -> u64 {
        self.values[self.idx(name)]
    }

    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// `name`'s fraction of the total (0 if the total is 0).
    pub fn share(&self, name: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.value(name) as f64 / total as f64
        }
    }

    /// Number of `add` calls (not the number of distinct requests — callers
    /// typically add several components per request).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Component names in declaration order. Paired with [`Breakdown::raw_values`]
    /// and [`Breakdown::samples`], this exposes the complete state for exact
    /// serialization (the disk run cache round-trips breakdowns this way).
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Accumulated values in declaration order (parallel to
    /// [`Breakdown::names`]).
    pub fn raw_values(&self) -> &[u64] {
        &self.values
    }

    /// Rebuilds a breakdown from previously captured state — the exact
    /// inverse of reading [`Breakdown::names`], [`Breakdown::raw_values`] and
    /// [`Breakdown::samples`]. The caller supplies the `'static` component
    /// names (decoders know which breakdown they are restoring and verify the
    /// serialized names against this table).
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or `values` has a different length.
    pub fn from_parts(names: &[&'static str], values: Vec<u64>, samples: u64) -> Self {
        assert!(!names.is_empty(), "breakdown needs at least one component");
        assert_eq!(
            names.len(),
            values.len(),
            "breakdown names/values length mismatch"
        );
        Self {
            names: names.to_vec(),
            values,
            samples,
        }
    }

    /// Iterates `(name, value, share)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, f64)> + '_ {
        let total = self.total();
        self.names.iter().zip(&self.values).map(move |(&n, &v)| {
            let share = if total == 0 {
                0.0
            } else {
                v as f64 / total as f64
            };
            (n, v, share)
        })
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value, share) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name}: {value} ({:.1}%)", share * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_components_rejected() {
        Breakdown::new(&[]);
    }

    #[test]
    #[should_panic(expected = "unknown breakdown component")]
    fn unknown_component_rejected() {
        let mut b = Breakdown::new(&["a"]);
        b.add("b", 1);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut b = Breakdown::new(&["x", "y", "z"]);
        b.add("x", 1);
        b.add("y", 2);
        b.add("z", 7);
        let s: f64 = b.iter().map(|(_, _, share)| share).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = Breakdown::new(&["x"]);
        assert_eq!(b.share("x"), 0.0);
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut b = Breakdown::new(&["wait", "serve"]);
        b.add("wait", 10);
        b.add("serve", 3);
        b.add("serve", 4);
        let rebuilt = Breakdown::from_parts(b.names(), b.raw_values().to_vec(), b.samples());
        assert_eq!(rebuilt.names(), b.names());
        assert_eq!(rebuilt.raw_values(), b.raw_values());
        assert_eq!(rebuilt.samples(), b.samples());
        assert_eq!(format!("{rebuilt}"), format!("{b}"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_length_mismatch_rejected() {
        Breakdown::from_parts(&["a", "b"], vec![1], 1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut b = Breakdown::new(&["wait", "serve"]);
        b.add("wait", 10);
        let s = format!("{b}");
        assert!(s.contains("wait: 10"));
        assert!(s.contains("serve: 0"));
    }
}
