//! Fixed-window time-series aggregation.

use crate::time::Cycle;

/// Aggregates samples into fixed-width windows of simulated time.
///
/// Each window records the number of samples, their sum, and the maximum —
/// enough to reproduce both the IOMMU buffer-pressure plot (Fig 4, max
/// occupancy per window) and the served-requests-over-time plot (Fig 13,
/// count per window).
///
/// # Example
///
/// ```
/// let mut ts = wsg_sim::stats::TimeSeries::new(100);
/// ts.record(10, 5);
/// ts.record(20, 7);
/// ts.record(150, 1);
/// assert_eq!(ts.windows().count(), 2);
/// let first = ts.windows().next().unwrap();
/// assert_eq!((first.start, first.count, first.max), (0, 2, 7));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: Cycle,
    windows: Vec<Window>,
}

/// One aggregation window of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start time (multiple of the window width).
    pub start: Cycle,
    /// Number of samples recorded in the window.
    pub count: u64,
    /// Sum of sample values in the window.
    pub sum: u64,
    /// Minimum sample value in the window (0 if empty).
    pub min: u64,
    /// Maximum sample value in the window (0 if empty).
    pub max: u64,
}

impl TimeSeries {
    /// Creates a time series with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window width must be positive");
        Self {
            window,
            windows: Vec::new(),
        }
    }

    /// Records a sample `value` observed at time `now`.
    pub fn record(&mut self, now: Cycle, value: u64) {
        let idx = (now / self.window) as usize;
        self.extend_through(idx);
        let w = &mut self.windows[idx];
        w.min = if w.count == 0 {
            value
        } else {
            w.min.min(value)
        };
        w.count += 1;
        w.sum += value;
        w.max = w.max.max(value);
    }

    /// Appends empty windows so the series covers every window up to and
    /// including the one containing `end` — giving all series of a run a
    /// uniform x-axis regardless of when their last sample landed (timeline
    /// CSV exports rely on this). A no-op when the series already reaches
    /// that far.
    pub fn pad_to(&mut self, end: Cycle) {
        self.extend_through((end / self.window) as usize);
    }

    fn extend_through(&mut self, idx: usize) {
        let from = self.windows.len();
        for i in from..=idx {
            self.windows.push(Window {
                start: i as Cycle * self.window,
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
            });
        }
    }

    /// Window width in cycles.
    pub fn window_width(&self) -> Cycle {
        self.window
    }

    /// Rebuilds a time series from previously captured state — the exact
    /// inverse of reading [`TimeSeries::window_width`] and
    /// [`TimeSeries::windows`] (the `Window` fields are public).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or any window's `start` is not the
    /// contiguous multiple of `window` its position implies.
    pub fn from_parts(window: Cycle, windows: Vec<Window>) -> Self {
        assert!(window > 0, "window width must be positive");
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(
                w.start,
                i as Cycle * window,
                "window {i} start is not contiguous"
            );
        }
        Self { window, windows }
    }

    /// Iterates over all windows from time 0 through the latest sample
    /// (including empty intermediate windows).
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Total sample count across all windows.
    pub fn total_count(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum()
    }

    /// Maximum per-window `max` over the whole series.
    pub fn peak(&self) -> u64 {
        self.windows.iter().map(|w| w.max).max().unwrap_or(0)
    }

    /// Mean of per-window counts (useful to compare request-rate shapes
    /// across problem sizes, Fig 13).
    pub fn mean_count_per_window(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.total_count() as f64 / self.windows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_window_rejected() {
        TimeSeries::new(0);
    }

    #[test]
    fn samples_land_in_windows() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, 1);
        ts.record(9, 2);
        ts.record(10, 3);
        let w: Vec<_> = ts.windows().cloned().collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].sum, 3);
        assert_eq!(w[1].count, 1);
    }

    #[test]
    fn gaps_create_empty_windows() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, 1);
        ts.record(35, 1);
        let w: Vec<_> = ts.windows().cloned().collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w[1].count, 0);
        assert_eq!(w[2].count, 0);
        assert_eq!(w[1].start, 10);
    }

    #[test]
    fn peak_tracks_max_sample() {
        let mut ts = TimeSeries::new(100);
        ts.record(0, 3);
        ts.record(150, 700);
        ts.record(151, 5);
        assert_eq!(ts.peak(), 700);
    }

    #[test]
    fn mean_count() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, 0);
        ts.record(1, 0);
        ts.record(15, 0);
        assert_eq!(ts.mean_count_per_window(), 1.5);
        assert_eq!(ts.total_count(), 3);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(10);
        assert_eq!(ts.peak(), 0);
        assert_eq!(ts.mean_count_per_window(), 0.0);
    }

    #[test]
    fn min_tracks_smallest_sample_per_window() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, 7);
        ts.record(1, 3);
        ts.record(2, 5);
        ts.record(15, 9);
        let w: Vec<_> = ts.windows().cloned().collect();
        assert_eq!((w[0].min, w[0].max), (3, 7));
        assert_eq!((w[1].min, w[1].max), (9, 9));
    }

    #[test]
    fn min_of_empty_window_is_zero() {
        let mut ts = TimeSeries::new(10);
        ts.record(25, 4);
        let w: Vec<_> = ts.windows().cloned().collect();
        assert_eq!(w[0].min, 0);
        assert_eq!(w[1].min, 0);
        assert_eq!(w[2].min, 4);
    }

    #[test]
    fn pad_to_extends_with_empty_windows() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, 1);
        ts.pad_to(39);
        let w: Vec<_> = ts.windows().cloned().collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w[3].start, 30);
        assert_eq!((w[3].count, w[3].sum, w[3].min, w[3].max), (0, 0, 0, 0));
        assert_eq!(ts.total_count(), 1);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, 7);
        ts.record(6, 2);
        ts.record(35, 4);
        let rebuilt = TimeSeries::from_parts(ts.window_width(), ts.windows().cloned().collect());
        assert_eq!(rebuilt.window_width(), ts.window_width());
        assert_eq!(
            rebuilt.windows().collect::<Vec<_>>(),
            ts.windows().collect::<Vec<_>>()
        );
        assert_eq!(rebuilt.peak(), ts.peak());
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn from_parts_rejects_gapped_windows() {
        let w = Window {
            start: 20,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        TimeSeries::from_parts(10, vec![w]);
    }

    #[test]
    fn pad_to_is_a_noop_when_already_covered() {
        let mut ts = TimeSeries::new(10);
        ts.record(35, 2);
        let before: Vec<_> = ts.windows().cloned().collect();
        ts.pad_to(12);
        let after: Vec<_> = ts.windows().cloned().collect();
        assert_eq!(before, after);
    }
}
