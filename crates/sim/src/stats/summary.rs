//! Running scalar summaries.

/// Running mean / min / max / count of a scalar sample stream.
///
/// Used for per-request scalar metrics such as remote-translation round-trip
/// times (Fig 17).
///
/// # Example
///
/// ```
/// let mut s = wsg_sim::stats::Summary::new();
/// s.record(10.0);
/// s.record(20.0);
/// assert_eq!(s.mean(), 15.0);
/// assert_eq!(s.min(), Some(10.0));
/// assert_eq!(s.max(), Some(20.0));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of the samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Rebuilds a summary from previously captured state — the exact inverse
    /// of reading [`Summary::count`], [`Summary::sum`], [`Summary::min`] and
    /// [`Summary::max`]. With `count == 0` the `sum`/`min`/`max` arguments
    /// are ignored and an empty summary is returned, matching the encoding
    /// convention of writing zeros for an empty summary.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return Self::default();
        }
        Self {
            count,
            sum,
            min,
            max,
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn tracks_extremes() {
        let mut s = Summary::new();
        for v in [5.0, -3.0, 12.0] {
            s.record(v);
        }
        assert_eq!(s.min(), Some(-3.0));
        assert_eq!(s.max(), Some(12.0));
        assert!((s.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn from_parts_round_trips() {
        let mut s = Summary::new();
        s.record(0.1);
        s.record(-2.5);
        s.record(7.25);
        let rebuilt = Summary::from_parts(
            s.count(),
            s.sum(),
            s.min().unwrap_or(0.0),
            s.max().unwrap_or(0.0),
        );
        assert_eq!(rebuilt.count(), s.count());
        assert_eq!(rebuilt.sum().to_bits(), s.sum().to_bits());
        assert_eq!(rebuilt.min(), s.min());
        assert_eq!(rebuilt.max(), s.max());

        let empty = Summary::from_parts(0, 123.0, 4.0, 5.0);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(2.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 2.0);
    }
}
