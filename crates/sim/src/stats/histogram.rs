//! Linear and logarithmic histograms.

/// A histogram with fixed-width linear buckets plus an overflow bucket.
///
/// Used for distributions with a known, modest range, e.g. the VPN distance
/// between consecutive translation requests (Fig 8).
///
/// # Example
///
/// ```
/// let mut h = wsg_sim::stats::Histogram::new(1, 10);
/// h.record(0);
/// h.record(3);
/// h.record(3);
/// h.record(1_000); // overflow
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_count(3), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. Counters saturate instead of wrapping so a
    /// long-lived accumulator (e.g. a daemon latency histogram) can never
    /// panic or corrupt itself, only pin at `u64::MAX`.
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value as u128);
        self.max = self.max.max(value);
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b = b.saturating_add(1),
            None => self.overflow = self.overflow.saturating_add(1),
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise, saturating).
    /// Used to combine per-worker or per-shard histograms into one view.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ — merging histograms with
    /// different granularity would silently misbucket.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge histograms with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(o);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count of samples that fell into the bucket containing `value`.
    pub fn bucket_count(&self, value: u64) -> u64 {
        let idx = (value / self.bucket_width) as usize;
        self.buckets.get(idx).copied().unwrap_or(self.overflow)
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded sample; 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of samples with `value <= threshold` (inclusive CDF point).
    ///
    /// Bucketing granularity applies: the threshold is rounded up to the end
    /// of its bucket.
    pub fn fraction_at_most(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let last = (threshold / self.bucket_width) as usize;
        let in_range: u64 = self.buckets.iter().take(last + 1).sum();
        in_range as f64 / self.count as f64
    }

    /// Iterates over `(bucket_start, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }

    /// Bucket width in value units.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// All bucket counts in order, including empty buckets. Together with
    /// [`Histogram::bucket_width`], [`Histogram::overflow`],
    /// [`Histogram::count`], [`Histogram::raw_sum`] and [`Histogram::max`]
    /// this exposes the complete state for exact serialization.
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact sum of all recorded samples (the un-averaged accumulator behind
    /// [`Histogram::mean`]).
    pub fn raw_sum(&self) -> u128 {
        self.sum
    }

    /// Rebuilds a histogram from previously captured state — the exact
    /// inverse of reading the raw accessors above.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is empty.
    pub fn from_parts(
        bucket_width: u64,
        buckets: Vec<u64>,
        overflow: u64,
        count: u64,
        sum: u128,
        max: u64,
    ) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(!buckets.is_empty(), "need at least one bucket");
        Self {
            bucket_width,
            buckets,
            overflow,
            count,
            sum,
            max,
        }
    }
}

/// A histogram with power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`,
/// with bucket 0 covering `{0, 1}`.
///
/// Used for quantities spanning many orders of magnitude such as
/// reuse distances (Fig 7) and per-VPN translation counts (Fig 6).
///
/// # Example
///
/// ```
/// let mut h = wsg_sim::stats::LogHistogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(5);
/// h.record(100_000);
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_for(5), 2); // [4, 8)
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty log-scale histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`.
    pub fn bucket_for(&self, value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one sample. Counters saturate instead of wrapping so a
    /// long-lived accumulator (e.g. a daemon latency histogram) can never
    /// panic or corrupt itself, only pin at `u64::MAX`.
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value as u128);
        self.max = self.max.max(value);
        let idx = self.bucket_for(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// Adds every sample of `other` into `self` (bucket-wise, saturating).
    /// Log buckets always align, so histograms over disjoint value ranges
    /// merge exactly: the shorter bucket vector grows to cover the longer.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucketed upper bound for the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper edge of the first bucket whose cumulative count
    /// reaches `q * count`, clamped to the recorded maximum. Returns 0 for
    /// an empty histogram. Resolution is one power of two — adequate for
    /// ops dashboards, not for exact percentiles.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let want = want.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= want {
                // Bucket i covers [2^i, 2^(i+1)) (bucket 0 covers {0, 1}).
                let edge = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return edge.min(self.max);
            }
        }
        self.max
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Iterates over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// All bucket counts in index order (bucket `i` covers `[2^i, 2^(i+1))`),
    /// including empty buckets. Together with [`LogHistogram::count`],
    /// [`LogHistogram::raw_sum`] and [`LogHistogram::max`] this exposes the
    /// complete state for exact serialization.
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact sum of all recorded samples (the un-averaged accumulator behind
    /// [`LogHistogram::mean`]).
    pub fn raw_sum(&self) -> u128 {
        self.sum
    }

    /// Rebuilds a log histogram from previously captured state — the exact
    /// inverse of reading the raw accessors above.
    pub fn from_parts(buckets: Vec<u64>, count: u64, sum: u128, max: u64) -> Self {
        Self {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Fraction of samples strictly greater than 1 — i.e. for per-VPN
    /// translation counts, the fraction of pages translated more than once
    /// (the motivation for caching in observation O3).
    pub fn fraction_above_one(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let singles = self.buckets.first().copied().unwrap_or(0);
        (self.count - singles) as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_rejected() {
        Histogram::new(0, 4);
    }

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::new(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.bucket_count(49), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn linear_cdf() {
        let mut h = Histogram::new(1, 100);
        for v in 0..10 {
            h.record(v);
        }
        assert!((h.fraction_at_most(4) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_most(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_iter_skips_empty() {
        let mut h = Histogram::new(2, 4);
        h.record(5);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(4, 1)]);
    }

    #[test]
    fn linear_mean() {
        let mut h = Histogram::new(1, 10);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn log_bucket_boundaries() {
        let h = LogHistogram::new();
        assert_eq!(h.bucket_for(0), 0);
        assert_eq!(h.bucket_for(1), 0);
        assert_eq!(h.bucket_for(2), 1);
        assert_eq!(h.bucket_for(3), 1);
        assert_eq!(h.bucket_for(4), 2);
        assert_eq!(h.bucket_for(1023), 9);
        assert_eq!(h.bucket_for(1024), 10);
    }

    #[test]
    fn log_records_and_iterates() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(1);
        h.record(8);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (8, 1)]);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn log_fraction_above_one() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(1);
        h.record(7);
        h.record(9);
        assert!((h.fraction_above_one() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_from_parts_round_trips() {
        let mut h = Histogram::new(3, 4);
        for v in [0, 2, 5, 11, 999] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(
            h.bucket_width(),
            h.raw_buckets().to_vec(),
            h.overflow(),
            h.count(),
            h.raw_sum(),
            h.max(),
        );
        assert_eq!(rebuilt.raw_buckets(), h.raw_buckets());
        assert_eq!(rebuilt.overflow(), h.overflow());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.mean().to_bits(), h.mean().to_bits());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(
            rebuilt.iter().collect::<Vec<_>>(),
            h.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn log_from_parts_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 6, 6, 1 << 40] {
            h.record(v);
        }
        let rebuilt =
            LogHistogram::from_parts(h.raw_buckets().to_vec(), h.count(), h.raw_sum(), h.max());
        assert_eq!(rebuilt.raw_buckets(), h.raw_buckets());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.mean().to_bits(), h.mean().to_bits());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(
            rebuilt.fraction_above_one().to_bits(),
            h.fraction_above_one().to_bits()
        );
    }

    #[test]
    fn log_empty_stats_are_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_above_one(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        assert!(h.raw_buckets().is_empty());
    }

    #[test]
    fn log_single_sample() {
        let mut h = LogHistogram::new();
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 37);
        assert_eq!(h.mean(), 37.0);
        // One sample: every quantile lands in its bucket, clamped to max.
        assert_eq!(h.quantile_upper_bound(0.0), 37);
        assert_eq!(h.quantile_upper_bound(0.5), 37);
        assert_eq!(h.quantile_upper_bound(1.0), 37);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(32, 1)]);
    }

    #[test]
    fn log_counts_saturate_instead_of_wrapping() {
        let mut h = LogHistogram::from_parts(vec![u64::MAX], u64::MAX, u128::MAX, 1);
        h.record(1); // would wrap count, bucket 0, and sum without saturation
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.raw_buckets()[0], u64::MAX);
        assert_eq!(h.raw_sum(), u128::MAX);
        let other = LogHistogram::from_parts(vec![3], 3, 3, 1);
        h.merge(&other); // merging into a pinned histogram stays pinned
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.raw_buckets()[0], u64::MAX);
    }

    #[test]
    fn linear_counts_saturate_instead_of_wrapping() {
        let mut h = Histogram::from_parts(2, vec![u64::MAX], u64::MAX, u64::MAX, u128::MAX, 9);
        h.record(0); // bucket 0 and count pinned
        h.record(1_000); // overflow pinned
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.raw_buckets()[0], u64::MAX);
        assert_eq!(h.overflow(), u64::MAX);
    }

    #[test]
    fn log_merge_disjoint_ranges() {
        // Low histogram: samples only in tiny buckets; high histogram:
        // samples only far above — no shared bucket between them.
        let mut low = LogHistogram::new();
        low.record(1);
        low.record(3);
        let mut high = LogHistogram::new();
        high.record(1 << 20);
        high.record((1 << 20) + 5);
        let mut merged = low.clone();
        merged.merge(&high);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max(), (1 << 20) + 5);
        assert_eq!(merged.raw_sum(), low.raw_sum() + high.raw_sum());
        assert_eq!(
            merged.iter().collect::<Vec<_>>(),
            vec![(0, 1), (2, 1), (1 << 20, 2)]
        );
        // Merging the other direction gives the same distribution.
        let mut flipped = high.clone();
        flipped.merge(&low);
        assert_eq!(flipped.raw_buckets(), merged.raw_buckets());
        assert_eq!(flipped.count(), merged.count());
    }

    #[test]
    fn linear_merge_disjoint_ranges_and_width_mismatch_panics() {
        let mut a = Histogram::new(10, 2);
        a.record(5);
        let mut b = Histogram::new(10, 8);
        b.record(75);
        a.merge(&b); // a's bucket vector grows to cover b's range
        assert_eq!(a.count(), 2);
        assert_eq!(a.bucket_count(5), 1);
        assert_eq!(a.bucket_count(75), 1);
        assert_eq!(a.overflow(), 0);
        assert_eq!(a.max(), 75);
        let w = Histogram::new(3, 2);
        let r = std::panic::catch_unwind(move || {
            let mut a = Histogram::new(10, 2);
            a.merge(&w);
        });
        assert!(r.is_err(), "mismatched widths must refuse to merge");
    }

    #[test]
    fn log_quantile_upper_bound_tracks_cdf() {
        let mut h = LogHistogram::new();
        for v in [1, 1, 1, 1, 1, 1, 1, 1, 1, 500] {
            h.record(v);
        }
        // 90% of samples are <= 1 (bucket 0, edge 1).
        assert_eq!(h.quantile_upper_bound(0.9), 1);
        // The tail sample lives in [256, 512); edge 511 clamps to max 500.
        assert_eq!(h.quantile_upper_bound(1.0), 500);
    }
}
