//! Statistics primitives backing the paper's figures.
//!
//! Every experiment in the HDPAT evaluation reduces to one of a few
//! aggregations:
//!
//! * [`Histogram`] — linear-bucket histograms (Fig 6, Fig 8).
//! * [`LogHistogram`] — power-of-two bucket histograms for quantities that
//!   span many orders of magnitude, such as reuse distances (Fig 7).
//! * [`TimeSeries`] — fixed-window aggregation over simulated time (Fig 4,
//!   Fig 13).
//! * [`Breakdown`] — named-component latency/count breakdowns (Fig 3,
//!   Fig 16).
//! * [`ReuseTracker`] — per-key reuse-distance measurement over a request
//!   stream (observation O3).
//! * [`Summary`] — running mean/min/max/count of a scalar sample stream
//!   (Fig 17 round-trip times).

mod breakdown;
mod histogram;
mod reuse;
mod summary;
mod timeseries;

pub use breakdown::Breakdown;
pub use histogram::{Histogram, LogHistogram};
pub use reuse::ReuseTracker;
pub use summary::Summary;
pub use timeseries::{TimeSeries, Window};

/// Geometric mean of a sequence of positive values.
///
/// Returns `None` for an empty input or if any value is non-positive.
///
/// # Example
///
/// ```
/// let g = wsg_sim::stats::geo_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(wsg_sim::stats::geo_mean(&[]).is_none());
/// ```
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basic() {
        assert_eq!(geo_mean(&[2.0, 2.0, 2.0]), Some(2.0));
    }

    #[test]
    fn geo_mean_rejects_nonpositive() {
        assert!(geo_mean(&[1.0, 0.0]).is_none());
        assert!(geo_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn geo_mean_single_value() {
        let g = geo_mean(&[3.5]).unwrap();
        assert!((g - 3.5).abs() < 1e-12);
    }
}
