//! A seeded, deterministic open-addressing hash index for hot-path tables.
//!
//! The simulator's metadata tables (page tables, redirection tables, MSHRs)
//! were originally `BTreeMap`s: O(log n) per access, but with a deterministic
//! iteration order that the determinism contract (DESIGN.md §11) relies on.
//! `std::collections::HashMap` would be O(1) but seeds its hasher from
//! process entropy (`RandomState`), so *iteration order* varies run to run —
//! exactly the nondeterminism lint rule d1 exists to keep out of observable
//! output, and rule d6 now rejects the type outright in simulator crates.
//!
//! [`HashIndex`] is the sanctioned replacement (and the one file exempt from
//! rule d6): an open-addressing table with
//!
//! * a **fixed seed** — the hash of a key is the same in every process, every
//!   run, on every host; the table layout is a pure function of the operation
//!   history;
//! * **linear probing with backward-shift deletion** — no tombstones, so
//!   probe chains never degrade with churn;
//! * **sorted-on-demand iteration** — [`HashIndex::iter_sorted`] collects and
//!   sorts by key, so any *observable* traversal is in ascending key order,
//!   byte-identical to what the `BTreeMap` produced. Unordered traversal is
//!   deliberately restricted to [`HashIndex::fold_values`], which is safe
//!   only for order-insensitive reductions.
//!
//! Keys are `u64` (VPNs, request ids and site ids all are); callers with
//! newtype keys wrap/unwrap at the boundary.

/// Fixed hash seed: every run, every host, the same table layout.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum number of slots (must be a power of two).
const MIN_SLOTS: usize = 16;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A deterministic open-addressing hash map from `u64` keys to `V`.
///
/// Drop-in for the hot-path `BTreeMap` uses: `get`/`insert`/`remove` are
/// amortized O(1), and [`HashIndex::iter_sorted`] restores ascending-key
/// order wherever traversal is observable.
///
/// # Example
///
/// ```
/// let mut ix = wsg_sim::HashIndex::new();
/// ix.insert(7, "seven");
/// ix.insert(3, "three");
/// assert_eq!(ix.get(7), Some(&"seven"));
/// let keys: Vec<u64> = ix.iter_sorted().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![3, 7]); // ascending, like a BTreeMap
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for HashIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HashIndex<V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an index pre-sized to hold `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut ix = Self::new();
        if n > 0 {
            ix.slots = new_slots(slots_for(n));
        }
        ix
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (mix(key ^ SEED) as usize) & self.mask()
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.find(key)?;
        self.slots[i].as_ref().map(|(_, v)| v)
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_if_needed();
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent (the `entry().or_insert_with()` idiom).
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, default());
        }
        // The entry exists now; find() cannot fail.
        let i = match self.find(key) {
            Some(i) => i,
            None => unreachable!("entry just inserted"),
        };
        match &mut self.slots[i] {
            Some((_, v)) => v,
            None => unreachable!("find() returned an empty slot"),
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Uses backward-shift deletion: subsequent entries in the probe chain
    /// are moved up so no tombstones are left behind and lookups stay O(probe
    /// length) forever, independent of churn history.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let (_, value) = match self.slots[i].take() {
            Some(kv) => kv,
            None => unreachable!("find() returned an empty slot"),
        };
        self.len -= 1;
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let home = match &self.slots[j] {
                None => break,
                Some((k, _)) => self.home(*k),
            };
            // Move slots[j] into the hole at i iff its probe path covers i,
            // i.e. the cyclic distance home→i does not exceed home→j.
            if j.wrapping_sub(home) & mask >= j.wrapping_sub(i) & mask {
                self.slots[i] = self.slots[j].take();
                i = j;
            }
        }
        Some(value)
    }

    /// Iterates entries in **ascending key order** (sorted on demand).
    ///
    /// This is the only ordered traversal; using it everywhere iteration is
    /// observable keeps output byte-identical to the former `BTreeMap`s.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut pairs: Vec<(u64, &V)> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
            .collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs.into_iter()
    }

    /// All keys in ascending order.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, _)| *k))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Folds over values in **unspecified order**.
    ///
    /// Safe only for order-insensitive reductions (sums, maxima, counts);
    /// anything whose result depends on traversal order must use
    /// [`HashIndex::iter_sorted`] instead.
    pub fn fold_values<A>(&self, init: A, mut f: impl FnMut(A, &V) -> A) -> A {
        let mut acc = init;
        for (_, v) in self.slots.iter().flatten() {
            acc = f(acc, v);
        }
        acc
    }

    fn grow_if_needed(&mut self) {
        if self.slots.is_empty() {
            self.slots = new_slots(MIN_SLOTS);
            return;
        }
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 <= self.slots.len() * 3 {
            return;
        }
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, new_slots(doubled));
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }
}

/// Slot count for `n` entries at ≤ 3/4 load, rounded to a power of two.
fn slots_for(n: usize) -> usize {
    let needed = n + n.div_ceil(3); // ceil(n * 4/3)
    needed.next_power_of_two().max(MIN_SLOTS)
}

fn new_slots<V>(n: usize) -> Vec<Option<(u64, V)>> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || None);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut ix = HashIndex::new();
        assert!(ix.is_empty());
        assert_eq!(ix.insert(1, "a"), None);
        assert_eq!(ix.insert(2, "b"), None);
        assert_eq!(ix.insert(1, "a2"), Some("a"));
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.get(1), Some(&"a2"));
        assert_eq!(ix.get(3), None);
        assert_eq!(ix.remove(1), Some("a2"));
        assert_eq!(ix.remove(1), None);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut ix = HashIndex::new();
        ix.insert(5, 10u64);
        *ix.get_mut(5).unwrap() += 1;
        assert_eq!(ix.get(5), Some(&11));
        assert!(ix.get_mut(6).is_none());
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut ix: HashIndex<Vec<u32>> = HashIndex::new();
        ix.get_or_insert_with(9, Vec::new).push(1);
        ix.get_or_insert_with(9, Vec::new).push(2);
        assert_eq!(ix.get(9), Some(&vec![1, 2]));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn iter_sorted_is_ascending() {
        let mut ix = HashIndex::new();
        for k in [9u64, 2, 7, 4, 0, u64::MAX] {
            ix.insert(k, k.wrapping_mul(10));
        }
        let keys: Vec<u64> = ix.iter_sorted().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 2, 4, 7, 9, u64::MAX]);
        assert_eq!(ix.keys_sorted(), keys);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut ix = HashIndex::with_capacity(4);
        for k in 0..10_000u64 {
            ix.insert(k, k);
        }
        assert_eq!(ix.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(ix.get(k), Some(&k));
        }
    }

    #[test]
    fn backward_shift_preserves_probe_chains() {
        // Force collisions by using many keys, removing half, and checking
        // the survivors are all still reachable (no tombstone needed).
        let mut ix = HashIndex::new();
        for k in 0..1000u64 {
            ix.insert(k, k);
        }
        for k in (0..1000u64).step_by(2) {
            assert_eq!(ix.remove(k), Some(k));
        }
        for k in 0..1000u64 {
            if k % 2 == 0 {
                assert_eq!(ix.get(k), None);
            } else {
                assert_eq!(ix.get(k), Some(&k));
            }
        }
        assert_eq!(ix.len(), 500);
    }

    #[test]
    fn churn_does_not_leak_slots() {
        let mut ix = HashIndex::with_capacity(16);
        for round in 0..100u64 {
            for k in 0..16u64 {
                ix.insert(round * 16 + k, ());
            }
            for k in 0..16u64 {
                ix.remove(round * 16 + k);
            }
        }
        assert!(ix.is_empty());
        // Table stays bounded: churn never grew it past the 16-entry need.
        assert!(ix.slots.len() <= 64, "slots grew to {}", ix.slots.len());
    }

    #[test]
    fn fold_values_sums_regardless_of_order() {
        let mut ix = HashIndex::new();
        for k in 0..100u64 {
            ix.insert(k, k);
        }
        assert_eq!(ix.fold_values(0u64, |a, v| a + v), 4950);
    }

    #[test]
    fn with_capacity_does_not_rehash_below_n() {
        let mut ix = HashIndex::with_capacity(100);
        let initial = ix.slots.len();
        for k in 0..100u64 {
            ix.insert(k, ());
        }
        assert_eq!(ix.slots.len(), initial);
    }

    #[test]
    fn empty_index_lookups_are_safe() {
        let ix: HashIndex<u32> = HashIndex::new();
        assert_eq!(ix.get(0), None);
        assert!(!ix.contains_key(42));
        assert_eq!(ix.iter_sorted().count(), 0);
    }
}
