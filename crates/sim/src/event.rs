//! The discrete-event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// A deterministic discrete-event queue.
///
/// Events are ordered by `(time, insertion sequence)`: two events scheduled
/// for the same cycle are delivered in the order they were pushed, which
/// keeps simulations reproducible regardless of heap internals.
///
/// The queue tracks the current simulation time ([`EventQueue::now`]), which
/// advances monotonically as events are popped. Pushing an event in the past
/// is a logic error and panics in debug builds.
///
/// # Example
///
/// ```
/// let mut q = wsg_sim::EventQueue::new();
/// q.push(100, "b");
/// q.push(100, "c");
/// q.push(50, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(50, "a"), (100, "b"), (100, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Cycle,
    seq: u64,
    pushed: u64,
    popped: u64,
    #[cfg(feature = "audit")]
    auditor: Option<crate::audit::AuditHandle>,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            pushed: 0,
            popped: 0,
            #[cfg(feature = "audit")]
            auditor: None,
        }
    }

    /// Attaches an auditor observing every push and pop.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: crate::audit::AuditHandle) {
        self.auditor = Some(auditor);
    }

    /// Schedules `payload` to fire at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is earlier than the current time.
    pub fn push(&mut self, time: Cycle, payload: E) {
        // The auditor sees the violation even in release builds, where the
        // debug_assert below compiles out.
        #[cfg(feature = "audit")]
        if let Some(a) = &self.auditor {
            a.with(|au| au.on_push(self.now, time));
        }
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {} < {}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` to fire `delay` cycles after the current time.
    pub fn push_after(&mut self, delay: Cycle, payload: E) {
        self.push(self.now.saturating_add(delay), payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        #[cfg(feature = "audit")]
        if let Some(a) = &self.auditor {
            a.with(|au| au.on_pop(self.now, entry.time));
        }
        debug_assert!(entry.time >= self.now, "time ran backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (throughput accounting).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// End-of-simulation conservation check: asserts every pushed event was
    /// popped (the queue fully drained) and returns `(pushed, popped)`.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if events are still pending.
    pub fn drain_check(&self) -> (u64, u64) {
        assert_eq!(
            self.pushed,
            self.popped,
            "event queue not drained: {} pushed vs {} popped ({} pending)",
            self.pushed,
            self.popped,
            self.len()
        );
        (self.pushed, self.popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(42, ());
        q.pop();
        assert_eq!(q.now(), 42);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(100, "first");
        q.pop();
        q.push_after(5, "second");
        assert_eq!(q.pop(), Some((105, "second")));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    #[cfg(debug_assertions)]
    fn pushing_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.push(9, ());
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.now(), 0);
    }

    #[test]
    fn drain_check_reports_counters() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        q.pop();
        assert_eq!(q.drain_check(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "not drained")]
    fn drain_check_rejects_pending_events() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.drain_check();
    }

    #[cfg(feature = "audit")]
    #[test]
    fn auditor_sees_past_push_in_any_profile() {
        use crate::audit::{AuditHandle, ConservationAuditor};
        use std::cell::RefCell;
        use std::rc::Rc;

        let auditor = Rc::new(RefCell::new(ConservationAuditor::new()));
        let mut q = EventQueue::new();
        q.set_auditor(AuditHandle::of(&auditor));
        q.push(10, ());
        q.pop();
        // Swallow the debug panic so the hook's observation is testable in
        // both profiles.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(5, ());
        }));
        if cfg!(debug_assertions) {
            assert!(r.is_err());
        }
        assert_eq!(auditor.borrow().total_violations(), 1);
    }
}
