//! The discrete-event queue at the heart of the simulator.
//!
//! Implemented as a two-level *calendar queue* (DESIGN.md §11): a ring of
//! per-cycle FIFO buckets covering the near future, backed by a sorted
//! overflow heap for far-future events. Push and pop are O(1) on the ring —
//! the common case by far in the simulator's hot loop — while delivery order
//! stays exactly the `(time, insertion sequence)` order of the original
//! `BinaryHeap` implementation (`tests/equivalence.rs` proves the two
//! pop-for-pop identical under arbitrary interleavings).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Width of the calendar ring: how far ahead of the window base an event may
/// land and still get an O(1) bucket. Must be a power of two (the bucket
/// index is `time % HORIZON`) and a multiple of 64 (the occupancy bitmap is
/// scanned a `u64` word at a time).
const HORIZON: usize = 4096;
/// Occupancy bitmap words — one bit per bucket.
const WORDS: usize = HORIZON / 64;

/// A deterministic discrete-event queue.
///
/// Events are ordered by `(time, insertion sequence)`: two events scheduled
/// for the same cycle are delivered in the order they were pushed, which
/// keeps simulations reproducible regardless of container internals.
///
/// The queue tracks the current simulation time ([`EventQueue::now`]), which
/// advances monotonically as events are popped. Pushing an event in the past
/// is a logic error and panics in debug builds.
///
/// # Structure
///
/// Three tiers, strictly ordered in time, so the earliest `(time, seq)`
/// entry is always at the front of the first non-empty tier:
///
/// * **Ring** — `HORIZON` per-cycle FIFO buckets covering
///   `[base, base + HORIZON)`, where `base` only ever advances. Each
///   occupied bucket holds the events of exactly one timestamp in insertion
///   order, so FIFO order *is* sequence order. A two-level occupancy bitmap
///   (a bit per bucket, a summary bit per word) finds the next occupied
///   bucket in a handful of `trailing_zeros` operations.
/// * **Overflow** — a `(time, seq)`-sorted heap for events at or beyond
///   `base + HORIZON`. Whenever `base` advances, entries that came inside
///   the window migrate into their ring buckets in heap order; an overflow
///   entry always migrates before any direct push to the same cycle can
///   occur (the window had not reached that cycle yet), so bucket FIFO
///   order still equals sequence order.
/// * **Backlog** — a sorted heap for events below `base`. Unreachable in
///   debug builds (pushing the past panics); in release builds it preserves
///   the heap-order delivery of erroneous past pushes, which the attached
///   auditor reports.
///
/// # Example
///
/// ```
/// let mut q = wsg_sim::EventQueue::new();
/// q.push(100, "b");
/// q.push(100, "c");
/// q.push(50, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(50, "a"), (100, "b"), (100, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Per-cycle FIFO buckets; index `time % HORIZON`.
    buckets: Vec<VecDeque<E>>,
    /// Occupancy bit per bucket.
    words: [u64; WORDS],
    /// Occupancy bit per `words` entry.
    summary: u64,
    /// Start of the ring window `[base, base + HORIZON)`. Monotone.
    base: Cycle,
    /// Events resident in the ring.
    ring_len: usize,
    /// Events at `time >= base + HORIZON`, in `(time, seq)` order.
    overflow: BinaryHeap<Entry<E>>,
    /// Events at `time < base` (release-mode past pushes only).
    backlog: BinaryHeap<Entry<E>>,
    now: Cycle,
    seq: u64,
    pushed: u64,
    popped: u64,
    #[cfg(feature = "audit")]
    auditor: Option<crate::audit::AuditHandle>,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue at time 0 with `far` slots reserved in the
    /// far-future overflow tier (the ring is a fixed allocation; its buckets
    /// allocate lazily on first use).
    pub fn with_capacity(far: usize) -> Self {
        let mut buckets = Vec::with_capacity(HORIZON);
        buckets.resize_with(HORIZON, VecDeque::new);
        Self {
            buckets,
            words: [0; WORDS],
            summary: 0,
            base: 0,
            ring_len: 0,
            overflow: BinaryHeap::with_capacity(far),
            backlog: BinaryHeap::new(),
            now: 0,
            seq: 0,
            pushed: 0,
            popped: 0,
            #[cfg(feature = "audit")]
            auditor: None,
        }
    }

    /// Attaches an auditor observing every push and pop.
    #[cfg(feature = "audit")]
    pub fn set_auditor(&mut self, auditor: crate::audit::AuditHandle) {
        self.auditor = Some(auditor);
    }

    fn set_bit(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
        self.summary |= 1u64 << (idx / 64);
    }

    fn clear_bit(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
        if self.words[idx / 64] == 0 {
            self.summary &= !(1u64 << (idx / 64));
        }
    }

    /// First occupied bucket in cyclic scan order starting at `from` (the
    /// window base slot): bits `>= from` first, wrapping to end just below
    /// it. `None` iff the ring is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let w0 = from / 64;
        let high = self.words[w0] & (!0u64 << (from % 64));
        if high != 0 {
            return Some(w0 * 64 + high.trailing_zeros() as usize);
        }
        if self.summary == 0 {
            return None;
        }
        // Cyclic word scan w0+1, w0+2, ... ending back at w0, whose low bits
        // (the far end of the window) are correctly considered last.
        let rot = self.summary.rotate_right(((w0 + 1) % WORDS) as u32);
        if rot == 0 {
            return None;
        }
        let w = (w0 + 1 + rot.trailing_zeros() as usize) % WORDS;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }

    /// Absolute time of ring bucket `idx`, given the window base slot.
    fn bucket_time(&self, idx: usize, from: usize) -> Cycle {
        self.base + ((idx + HORIZON - from) % HORIZON) as Cycle
    }

    /// Advances the window base, migrating overflow entries that came inside
    /// the window into their ring buckets in `(time, seq)` order.
    fn advance_base(&mut self, to: Cycle) {
        self.base = to;
        while let Some(head) = self.overflow.peek() {
            // No overflow: every overflow entry's time is >= the new base
            // (it exceeded the old base by a full horizon, and `to` is
            // either a ring time inside the old window or the overflow
            // minimum itself).
            if head.time - self.base >= HORIZON as Cycle {
                break;
            }
            let entry = match self.overflow.pop() {
                Some(e) => e,
                None => unreachable!("peeked entry vanished"),
            };
            let idx = (entry.time % HORIZON as Cycle) as usize;
            self.buckets[idx].push_back(entry.payload);
            self.set_bit(idx);
            self.ring_len += 1;
        }
    }

    /// Pops the earliest ring event. Caller guarantees `ring_len > 0`.
    fn pop_ring(&mut self) -> (Cycle, E) {
        let from = (self.base % HORIZON as Cycle) as usize;
        let idx = match self.next_occupied(from) {
            Some(i) => i,
            None => unreachable!("ring_len > 0 with an empty occupancy bitmap"),
        };
        let time = self.bucket_time(idx, from);
        let payload = match self.buckets[idx].pop_front() {
            Some(p) => p,
            None => unreachable!("occupied bit over an empty bucket"),
        };
        if self.buckets[idx].is_empty() {
            self.clear_bit(idx);
        }
        self.ring_len -= 1;
        self.advance_base(time);
        (time, payload)
    }

    /// Schedules `payload` to fire at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is earlier than the current time.
    pub fn push(&mut self, time: Cycle, payload: E) {
        // The auditor sees the violation even in release builds, where the
        // debug_assert below compiles out.
        #[cfg(feature = "audit")]
        if let Some(a) = &self.auditor {
            a.with(|au| au.on_push(self.now, time));
        }
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {} < {}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        if time < self.base {
            // Release-only: a past push (or a push between a regressed `now`
            // and `base`) cannot enter the ring; the backlog heap preserves
            // its (time, seq) delivery slot ahead of every ring entry.
            self.backlog.push(Entry { time, seq, payload });
        } else if time - self.base < HORIZON as Cycle {
            let idx = (time % HORIZON as Cycle) as usize;
            self.buckets[idx].push_back(payload);
            self.set_bit(idx);
            self.ring_len += 1;
        } else {
            self.overflow.push(Entry { time, seq, payload });
        }
    }

    /// Schedules `payload` to fire `delay` cycles after the current time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now + delay` overflows the cycle counter.
    /// Release builds report the overflow through
    /// `audit::Audit::on_delay_overflow` (when auditing is enabled) and
    /// clamp the event to `Cycle::MAX`.
    pub fn push_after(&mut self, delay: Cycle, payload: E) {
        match self.now.checked_add(delay) {
            Some(time) => self.push(time, payload),
            None => {
                #[cfg(feature = "audit")]
                if let Some(a) = &self.auditor {
                    a.with(|au| au.on_delay_overflow(self.now, delay));
                }
                if cfg!(debug_assertions) {
                    panic!(
                        "push_after delay overflow: {} + {} wraps the cycle counter",
                        self.now, delay
                    );
                }
                self.push(Cycle::MAX, payload);
            }
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (time, payload) = if let Some(e) = self.backlog.pop() {
            (e.time, e.payload)
        } else if self.ring_len > 0 {
            self.pop_ring()
        } else if let Some(e) = self.overflow.pop() {
            self.advance_base(e.time);
            (e.time, e.payload)
        } else {
            return None;
        };
        #[cfg(feature = "audit")]
        if let Some(a) = &self.auditor {
            a.with(|au| au.on_pop(self.now, time));
        }
        debug_assert!(time >= self.now, "time ran backwards");
        self.now = time;
        self.popped += 1;
        Some((time, payload))
    }

    /// Removes every pending event of the earliest timestamp — one whole
    /// calendar bucket — appending the payloads to `out` in delivery order
    /// and advancing the clock to that timestamp. Returns the number of
    /// events drained (0 iff the queue is empty; `out` is untouched then).
    ///
    /// This is the batched form of [`EventQueue::pop`]: a sequence of
    /// `drain_bucket` calls delivers exactly the same `(time, payload)`
    /// stream as a sequence of `pop` calls — including events pushed *between*
    /// batches at the just-drained timestamp, which land in the (re-based)
    /// ring bucket and come out in the next batch, after the current one,
    /// exactly where their higher sequence numbers place them. The attached
    /// auditor observes the same per-event `on_pop(prev, time)` arguments as
    /// under per-pop delivery. Batching amortizes the occupancy-bitmap scan,
    /// base advance and `now` update over the bucket.
    ///
    /// A bucket holds exactly one timestamp, so the batch never spans
    /// cycles; handlers can treat [`EventQueue::now`] as constant across it.
    pub fn drain_bucket(&mut self, out: &mut Vec<E>) -> usize {
        let start = out.len();
        let time = if let Some(head) = self.backlog.peek() {
            // Release-mode past pushes: drain the equal-time run in heap
            // (time, seq) order. Backlog times sit below `base`, so they
            // always precede every ring and overflow entry.
            let t = head.time;
            while let Some(h) = self.backlog.peek() {
                if h.time != t {
                    break;
                }
                match self.backlog.pop() {
                    Some(e) => out.push(e.payload),
                    None => unreachable!("peeked entry vanished"),
                }
            }
            t
        } else if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = match self.next_occupied(from) {
                Some(i) => i,
                None => unreachable!("ring_len > 0 with an empty occupancy bitmap"),
            };
            let t = self.bucket_time(idx, from);
            let n = self.buckets[idx].len();
            out.extend(self.buckets[idx].drain(..));
            self.clear_bit(idx);
            self.ring_len -= n;
            // Migrating after the drain is equivalent to the per-pop
            // interleaving: an occupied ring bucket at `t` precludes
            // overflow entries at `t` (overflow starts a full horizon past
            // the base), so no migration can extend the current batch.
            self.advance_base(t);
            t
        } else if let Some(e) = self.overflow.pop() {
            let t = e.time;
            out.push(e.payload);
            // Same-time overflow siblings migrate into the ring bucket for
            // `t` (in heap order, i.e. ascending seq — all above `e`'s) and
            // belong to this batch. The bucket cannot hold anything else:
            // the ring was empty, and a migrated time `t' > t` with
            // `t' ≡ t (mod HORIZON)` would be a full horizon out, beyond
            // the migration window.
            self.advance_base(t);
            let idx = (t % HORIZON as Cycle) as usize;
            if self.words[idx / 64] & (1u64 << (idx % 64)) != 0 {
                let n = self.buckets[idx].len();
                out.extend(self.buckets[idx].drain(..));
                self.clear_bit(idx);
                self.ring_len -= n;
            }
            t
        } else {
            return 0;
        };
        let n = out.len() - start;
        #[cfg(feature = "audit")]
        if let Some(a) = &self.auditor {
            // Per-event hook parity with `pop`: the first event advances the
            // clock from the previous `now`, the rest observe `time == prev`.
            a.with(|au| {
                au.on_pop(self.now, time);
                for _ in 1..n {
                    au.on_pop(time, time);
                }
            });
        }
        debug_assert!(time >= self.now, "time ran backwards");
        self.now = time;
        self.popped += n as u64;
        n
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if let Some(e) = self.backlog.peek() {
            return Some(e.time);
        }
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = self.next_occupied(from)?;
            return Some(self.bucket_time(idx, from));
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Re-anchors an **empty** queue's clock (and ring base) at `t`.
    ///
    /// This exists for the sharded drive (DESIGN.md §15), which uses one
    /// `EventQueue` as a per-dispatch *outbox*: the coordinator sets the
    /// clock to the delivered event's timestamp, dispatches the handler
    /// (whose pushes then see the same `now` as under serial execution —
    /// including the attached auditor), and drains the outbox into the
    /// shard queues. Draining advances `now` past `t`, so the next anchor
    /// may move the clock in either direction; that is only sound because
    /// the queue holds no entries, which is asserted.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if the queue is not empty.
    pub fn set_now(&mut self, t: Cycle) {
        assert!(
            self.is_empty(),
            "set_now on a non-empty queue ({} pending)",
            self.len()
        );
        self.now = t;
        self.base = t;
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + self.backlog.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (throughput accounting).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// End-of-simulation conservation check: asserts every pushed event was
    /// popped (the queue fully drained) and returns `(pushed, popped)`.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if events are still pending.
    pub fn drain_check(&self) -> (u64, u64) {
        assert_eq!(
            self.pushed,
            self.popped,
            "event queue not drained: {} pushed vs {} popped ({} pending)",
            self.pushed,
            self.popped,
            self.len()
        );
        (self.pushed, self.popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(42, ());
        q.pop();
        assert_eq!(q.now(), 42);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(100, "first");
        q.pop();
        q.push_after(5, "second");
        assert_eq!(q.pop(), Some((105, "second")));
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Events beyond base + HORIZON take the overflow path and must still
        // deliver in (time, seq) order after migrating back into the ring.
        let mut q = EventQueue::new();
        let far = HORIZON as Cycle * 3 + 17;
        q.push(far, "far-b");
        q.push(5, "near");
        q.push(far, "far-c");
        q.push(far + 1, "far-d");
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((far, "far-b")));
        assert_eq!(q.pop(), Some((far, "far-c")));
        assert_eq!(q.pop(), Some((far + 1, "far-d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn migration_keeps_fifo_with_direct_pushes() {
        // An overflow entry migrates the moment the window reaches it —
        // before any direct push to the same cycle is possible — so bucket
        // FIFO order equals global insertion order.
        let mut q = EventQueue::new();
        let t = HORIZON as Cycle + 100;
        q.push(t, 0); // overflow (window is [0, HORIZON))
        q.push(200, 1); // ring
        assert_eq!(q.pop(), Some((200, 1))); // base -> 200, t migrates
        q.push(t, 2); // direct push into the same bucket
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn ring_wraps_around_the_horizon() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            let t = i * (HORIZON as Cycle / 2 + 3);
            q.push(t, i);
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    #[cfg(debug_assertions)]
    fn pushing_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    #[should_panic(expected = "delay overflow")]
    #[cfg(debug_assertions)]
    fn push_after_overflow_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push_after(Cycle::MAX, ());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.push(9, ());
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.now(), 0);
    }

    #[test]
    fn set_now_reanchors_an_empty_queue() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(40, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((40, "b")));
        // Outbox pattern: the drain advanced `now` to 40; the coordinator
        // re-anchors at an earlier delivery time and keeps scheduling.
        q.set_now(12);
        assert_eq!(q.now(), 12);
        q.push(12, "c");
        q.push(13, "d");
        assert_eq!(q.pop(), Some((12, "c")));
        assert_eq!(q.pop(), Some((13, "d")));
        assert_eq!(q.drain_check(), (4, 4));
    }

    #[test]
    #[should_panic(expected = "set_now on a non-empty queue")]
    fn set_now_rejects_pending_events() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.set_now(5);
    }

    #[test]
    fn drain_check_reports_counters() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        q.pop();
        assert_eq!(q.drain_check(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "not drained")]
    fn drain_check_rejects_pending_events() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.drain_check();
    }

    #[test]
    fn drain_bucket_takes_one_whole_timestamp() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(20, "c");
        q.push(10, "b");
        let mut out = Vec::new();
        assert_eq!(q.drain_bucket(&mut out), 2);
        assert_eq!(out, vec!["a", "b"]);
        assert_eq!(q.now(), 10);
        out.clear();
        assert_eq!(q.drain_bucket(&mut out), 1);
        assert_eq!(out, vec!["c"]);
        assert_eq!(q.now(), 20);
        out.clear();
        assert_eq!(q.drain_bucket(&mut out), 0);
        assert!(out.is_empty());
        assert_eq!(q.drain_check(), (3, 3));
    }

    #[test]
    fn drain_bucket_matches_pop_for_pop_delivery() {
        // The same synthetic workload (each event spawns follow-ups, some at
        // the current cycle) delivered per-pop and per-batch must produce an
        // identical (time, payload) stream.
        let step = |t: Cycle, n: u32| -> Vec<(Cycle, u32)> {
            let h = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t;
            if n < 300 {
                // One same-cycle spawn (h % 3 == 0 often) and one spread out
                // across ring and overflow distances.
                vec![
                    (t + (h % 3), n * 2 + 1),
                    (t + (h % (3 * HORIZON as Cycle / 2)), n * 2 + 2),
                ]
            } else {
                Vec::new()
            }
        };

        let mut per_pop = EventQueue::new();
        per_pop.push(0, 0u32);
        let mut pop_order = Vec::new();
        while let Some((t, n)) = per_pop.pop() {
            pop_order.push((t, n));
            for (ct, c) in step(t, n) {
                per_pop.push(ct, c);
            }
        }

        let mut batched = EventQueue::new();
        batched.push(0, 0u32);
        let mut batch_order = Vec::new();
        let mut batch = Vec::new();
        loop {
            if batched.drain_bucket(&mut batch) == 0 {
                break;
            }
            let t = batched.now();
            for n in batch.drain(..) {
                batch_order.push((t, n));
                for (ct, c) in step(t, n) {
                    batched.push(ct, c);
                }
            }
        }

        assert_eq!(pop_order, batch_order);
        assert_eq!(per_pop.drain_check(), batched.drain_check());
    }

    #[test]
    fn drain_bucket_pulls_same_time_overflow_siblings() {
        // With the ring empty, popping an overflow head migrates its
        // same-time siblings into the ring; the batch must include them.
        let mut q = EventQueue::new();
        let far = HORIZON as Cycle * 2 + 5;
        q.push(far, 1);
        q.push(far, 2);
        q.push(far + 1, 3);
        let mut out = Vec::new();
        assert_eq!(q.drain_bucket(&mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.now(), far);
        out.clear();
        assert_eq!(q.drain_bucket(&mut out), 1);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn pushes_at_the_drained_time_land_in_the_next_batch() {
        let mut q = EventQueue::new();
        q.push(7, 0);
        q.push(7, 1);
        let mut out = Vec::new();
        assert_eq!(q.drain_bucket(&mut out), 2);
        // A handler at t=7 schedules more work at t=7: higher sequence
        // numbers put it after the drained batch, in its own bucket run.
        q.push(7, 2);
        q.push(7, 3);
        q.push(8, 4);
        out.clear();
        assert_eq!(q.drain_bucket(&mut out), 2);
        assert_eq!(out, vec![2, 3]);
        assert_eq!(q.now(), 7);
        out.clear();
        assert_eq!(q.drain_bucket(&mut out), 1);
        assert_eq!(out, vec![4]);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn drain_bucket_reports_per_event_pops_to_the_auditor() {
        use crate::audit::{Audit, AuditHandle};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct PopLog(Vec<(Cycle, Cycle)>);
        impl Audit for PopLog {
            fn on_pop(&mut self, prev: Cycle, time: Cycle) {
                self.0.push((prev, time));
            }
        }

        let log = Rc::new(RefCell::new(PopLog::default()));
        let mut q = EventQueue::new();
        q.set_auditor(AuditHandle::of(&log));
        q.push(4, ());
        q.push(9, ());
        q.push(9, ());
        let mut out = Vec::new();
        q.drain_bucket(&mut out);
        out.clear();
        q.drain_bucket(&mut out);
        // Exactly what three pops would have reported.
        assert_eq!(log.borrow().0, vec![(0, 4), (4, 9), (9, 9)]);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn auditor_sees_past_push_in_any_profile() {
        use crate::audit::{AuditHandle, ConservationAuditor};
        use std::cell::RefCell;
        use std::rc::Rc;

        let auditor = Rc::new(RefCell::new(ConservationAuditor::new()));
        let mut q = EventQueue::new();
        q.set_auditor(AuditHandle::of(&auditor));
        q.push(10, ());
        q.pop();
        // Swallow the debug panic so the hook's observation is testable in
        // both profiles.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(5, ());
        }));
        if cfg!(debug_assertions) {
            assert!(r.is_err());
        }
        assert_eq!(auditor.borrow().total_violations(), 1);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn push_after_overflow_reports_to_auditor() {
        use crate::audit::{AuditHandle, ConservationAuditor};
        use std::cell::RefCell;
        use std::rc::Rc;

        let auditor = Rc::new(RefCell::new(ConservationAuditor::new()));
        let mut q = EventQueue::new();
        q.set_auditor(AuditHandle::of(&auditor));
        q.push(10, ());
        q.pop();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push_after(Cycle::MAX, ());
        }));
        if cfg!(debug_assertions) {
            assert!(r.is_err());
        } else {
            // Release builds clamp and keep going; the event still delivers.
            assert_eq!(q.pop(), Some((Cycle::MAX, ())));
        }
        assert_eq!(auditor.borrow().total_violations(), 1);
    }
}
