//! Scoped worker pool for deterministic fan-out of independent simulations.
//!
//! The registry is unreachable in this build environment, so the pool is
//! hand-rolled on [`std::thread::scope`] instead of pulling in rayon. It is
//! deliberately minimal: a shared atomic work index hands out job indices to
//! `jobs` worker threads, every worker buffers `(index, result)` pairs
//! locally, and the buffers are merged and sorted by index after the scope
//! joins. Because each job is a pure function of its index and results are
//! returned in input order, the output is **bit-identical for every `jobs`
//! value** — OS scheduling decides only *when* a job runs, never what it
//! computes or where its result lands.
//!
//! This file is the one sanctioned thread-spawning site in the workspace:
//! the determinism lint's `wallclock`/ambient-entropy rule (d2) flags
//! `thread::spawn` / `thread::scope` / `available_parallelism` everywhere
//! else, because ad-hoc concurrency is the easiest way to let scheduling
//! nondeterminism leak into model state. See DESIGN.md §9.
//!
//! # Example
//!
//! ```
//! use wsg_sim::pool;
//!
//! let squares = pool::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Input order is preserved regardless of the worker count:
//! assert_eq!(squares, pool::run_indexed(1, 8, |i| i * i));
//! ```

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1 when it
/// cannot be determined. This is the only machine-dependent input to the
/// pool, and it only ever changes wall-clock time, never results.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(n - 1)` across up to `jobs` worker threads and
/// returns the results **in index order**.
///
/// With `jobs <= 1` (or fewer than two items) everything runs on the calling
/// thread in index order — byte-for-byte the serial path, with no threads
/// spawned at all. `f` must be safe to call concurrently from multiple
/// threads; each index is handed to exactly one worker.
///
/// # Panics
///
/// Propagates the first panic raised by `f`. A panicking job aborts the
/// pool promptly: the other workers stop at their next job boundary
/// instead of draining the remaining indices, so a failure in run 2 of a
/// 500-run sweep does not surface minutes later.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, n, f, |_| {})
}

/// [`run_indexed`] with a completion observer: `on_done(i)` runs after job
/// `i` finishes (on the worker thread that ran it, in completion — not
/// index — order). The observer exists for live progress reporting; it must
/// not influence results.
pub fn run_indexed_with<T, F, O>(jobs: usize, n: usize, f: F, on_done: O) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(usize) + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n)
            .map(|i| {
                let r = f(i);
                on_done(i);
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let merged: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    while !aborted.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Catch the payload here rather than letting it
                        // unwind the worker, so the abort flag is raised the
                        // moment the panic happens and the other workers cut
                        // their job loops short.
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(r) => {
                                local.push((i, r));
                                on_done(i);
                            }
                            Err(payload) => {
                                aborted.store(true, Ordering::Relaxed);
                                if let Ok(mut slot) = first_panic.lock() {
                                    slot.get_or_insert(payload);
                                }
                                break;
                            }
                        }
                    }
                    // A poisoned mutex means another worker panicked while
                    // merging; that panic is about to be propagated below,
                    // so this worker's results are moot.
                    if let Ok(mut out) = merged.lock() {
                        out.extend(local);
                    }
                })
            })
            .collect();
        // Join every worker before re-raising, so the scope never has to
        // auto-join a panicked thread (which would mask the payload). Only
        // an observer panic can reach join() now; keep its payload too.
        for worker in workers {
            if let Err(payload) = worker.join() {
                aborted.store(true, Ordering::Relaxed);
                if let Ok(mut slot) = first_panic.lock() {
                    slot.get_or_insert(payload);
                }
            }
        }
    });
    let payload = match first_panic.into_inner() {
        Ok(slot) => slot,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    let mut pairs = match merged.into_inner() {
        Ok(pairs) => pairs,
        Err(poisoned) => poisoned.into_inner(),
    };
    pairs.sort_by_key(|&(i, _)| i);
    assert_eq!(pairs.len(), n, "worker pool lost results");
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A boxed unit of work for a [`TaskPool`] worker.
pub type Task = Box<dyn FnOnce() + Send>;

/// A long-lived service worker pool: `jobs` threads repeatedly ask a
/// caller-supplied `fetch` closure for the next task and run it.
///
/// Where [`run_indexed`] fans a *fixed batch* of independent jobs out and
/// joins, `TaskPool` serves an *open-ended stream* — the request scheduler of
/// the `hdpat-sim serve` daemon feeds it submissions as clients produce
/// them. Scheduling policy lives entirely in `fetch` (the pool imposes no
/// queue of its own), so fairness and priority decisions stay with the
/// caller; the pool only owns the threads. `fetch` may block (e.g. on a
/// condvar) until work is available and returns `None` to tell the calling
/// worker to exit — once every worker has seen `None`, [`TaskPool::join`]
/// returns.
///
/// Like the batch pool, this type never touches model state: tasks are
/// host-side harness work, and determinism of simulation outputs is owned by
/// the tasks themselves (each simulation is a pure function of its config).
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::{Arc, Mutex};
/// use wsg_sim::pool::{Task, TaskPool};
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let queue = Arc::new(Mutex::new(vec![1u32, 2, 3]));
/// let pool = TaskPool::new(2, {
///     let (queue, done) = (queue.clone(), done.clone());
///     move || -> Option<Task> {
///         let item = queue.lock().ok()?.pop()?;
///         let done = done.clone();
///         Some(Box::new(move || {
///             done.fetch_add(item as usize, Ordering::Relaxed);
///         }))
///     }
/// });
/// pool.join();
/// assert_eq!(done.load(Ordering::Relaxed), 6);
/// ```
#[derive(Debug)]
pub struct TaskPool {
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `jobs` worker threads (at least one), each looping
    /// `while let Some(task) = fetch() { task() }`.
    ///
    /// A panicking task takes its worker down but leaves the others running;
    /// [`TaskPool::join`] reports how many workers died that way.
    pub fn new<F>(jobs: usize, fetch: F) -> Self
    where
        F: Fn() -> Option<Task> + Send + Sync + 'static,
    {
        let fetch = std::sync::Arc::new(fetch);
        let workers = (0..jobs.max(1))
            .map(|i| {
                let fetch = fetch.clone();
                std::thread::Builder::new()
                    .name(format!("wsg-task-{i}"))
                    .spawn(move || {
                        while let Some(task) = fetch() {
                            // Isolate task panics so one bad request cannot
                            // silently wedge the scheduler: the worker keeps
                            // serving, the panic is reported on join.
                            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                                // Payload already printed by the default
                                // panic hook; nothing model-visible here.
                            }
                        }
                    })
                    .unwrap_or_else(|e| panic!("cannot spawn task-pool worker: {e}"))
            })
            .collect();
        Self { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Waits for every worker to exit (i.e. for `fetch` to have returned
    /// `None` to each of them). The caller is responsible for making `fetch`
    /// terminate — typically by flipping a shutdown flag and notifying the
    /// condvar `fetch` blocks on.
    pub fn join(self) {
        for w in self.workers {
            // Worker bodies catch task panics, so join errors are
            // unreachable in practice; swallow defensively.
            let _ = w.join();
        }
    }
}

/// Spawns one named detached harness thread. This is the sanctioned wrapper
/// for service-side threads that do not fit the indexed-batch model — e.g.
/// the per-connection reader loops of the `hdpat-sim serve` daemon. The
/// handle may be joined or dropped; the thread must never touch simulator
/// model state (the same contract as the worker pools in this module).
pub fn spawn_detached<F>(name: &str, f: F) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .unwrap_or_else(|e| panic!("cannot spawn harness thread `{name}`: {e}"))
}

/// Error returned by [`ShardBarrier::wait`] when a sibling shard panicked:
/// the barrier can never complete, so the waiter must stop its window loop
/// and unwind. The original panic payload is held by the barrier for the
/// coordinator to re-raise (see [`ShardBarrier::take_panic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

#[derive(Default)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
    /// First panic payload deposited by [`ShardBarrier::poison`]; later
    /// panics (typically siblings unwinding after their `wait` errored) are
    /// dropped so the root cause is what resurfaces.
    panic: Option<Box<dyn Any + Send>>,
}

/// A reusable lookahead barrier for shard worker threads that survives
/// participant panics.
///
/// `std::sync::Barrier` deadlocks the sharded drive's failure case: if one
/// shard's window body panics, its siblings wait forever for an arrival
/// that can never come. `ShardBarrier` adds a *poison* channel — a
/// panicking participant deposits its payload with
/// [`ShardBarrier::poison`], every blocked or future [`ShardBarrier::wait`]
/// returns [`BarrierPoisoned`] immediately, and the coordinator re-raises
/// the original payload after joining (see [`run_sharded_workers`], which
/// packages the whole protocol).
pub struct ShardBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: std::sync::Condvar,
}

impl std::fmt::Debug for ShardBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardBarrier")
            .field("parties", &self.parties)
            .finish_non_exhaustive()
    }
}

impl ShardBarrier {
    /// Creates a barrier for `parties` participants (at least one).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        Self {
            parties,
            state: Mutex::new(BarrierState::default()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        match self.state.lock() {
            Ok(g) => g,
            // A panic between lock and unlock only happens while poisoning,
            // which leaves the state consistent; recover and read it.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Blocks until all `parties` participants have arrived, then releases
    /// them together and resets for the next window.
    ///
    /// Returns `Err(BarrierPoisoned)` — immediately, without blocking — if
    /// any participant has panicked, including while this caller was
    /// already waiting.
    pub fn wait(&self) -> Result<(), BarrierPoisoned> {
        let mut st = self.locked();
        if st.poisoned {
            return Err(BarrierPoisoned);
        }
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        if st.poisoned {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    /// Marks the barrier poisoned with a panic payload and wakes every
    /// waiter. The first payload wins; subsequent ones are dropped.
    pub fn poison(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.locked();
        st.poisoned = true;
        st.panic.get_or_insert(payload);
        self.cv.notify_all();
    }

    /// Whether a participant has panicked.
    pub fn is_poisoned(&self) -> bool {
        self.locked().poisoned
    }

    /// Takes the first deposited panic payload, if any, so the coordinator
    /// can `resume_unwind` it after joining the workers.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.locked().panic.take()
    }
}

/// Runs `f(shard, &barrier)` on one thread per shard, sharing a
/// [`ShardBarrier`] sized to the shard count, and joins them all.
///
/// This is the sanctioned driver for lock-step lookahead execution
/// (DESIGN.md §15): each worker alternates window work with
/// `barrier.wait()`, bailing out of its loop when the wait reports
/// [`BarrierPoisoned`]. A panic anywhere — inside a window body or between
/// waits — poisons the barrier (so no sibling deadlocks on a vanished
/// participant) and resurfaces from this function with the *original*
/// payload once every worker has exited.
pub fn run_sharded_workers<F>(shards: usize, f: F)
where
    F: Fn(usize, &ShardBarrier) + Sync,
{
    let barrier = ShardBarrier::new(shards.max(1));
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..shards.max(1))
            .map(|s| {
                let barrier = &barrier;
                let f = &f;
                scope.spawn(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(s, barrier))) {
                        barrier.poison(payload);
                    }
                })
            })
            .collect();
        for worker in workers {
            // Worker bodies catch their panics and poison instead, so join
            // errors are unreachable; swallow defensively.
            let _ = worker.join();
        }
    });
    if let Some(payload) = barrier.take_panic() {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(1, 100, |i| i as u64 * 3 + 1);
        for jobs in [2, 4, 7] {
            assert_eq!(serial, run_indexed(jobs, 100, |i| i as u64 * 3 + 1));
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = run_indexed(4, 0, |_| 1);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_keep_input_order_under_skew() {
        // Early indices do the most work, so late indices finish first on a
        // multi-core host; order must still be by index.
        let out = run_indexed(4, 32, |i| {
            let spin = (32 - i) * 10_000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn worker_panic_aborts_remaining_jobs_promptly() {
        use std::sync::atomic::AtomicUsize;
        // Job 0 panics immediately; every other job takes ~2 ms. Without
        // the abort flag the surviving worker would drain all remaining
        // indices before the panic resurfaces; with it, only the handful of
        // jobs already in flight run to completion.
        let executed = AtomicUsize::new(0);
        let n = 256;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(2, n, |i| {
                if i == 0 {
                    panic!("early failure");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                executed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "early failure");
        assert!(
            executed.load(Ordering::Relaxed) < n / 2,
            "pool drained {} of {n} jobs after a panic",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn observer_sees_every_completed_job() {
        use std::sync::atomic::AtomicUsize;
        for jobs in [1, 4] {
            let done = AtomicUsize::new(0);
            let out = run_indexed_with(
                jobs,
                50,
                |i| i * 2,
                |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(out.len(), 50);
            assert_eq!(done.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn task_pool_drains_queue_and_joins() {
        use std::sync::Arc;
        for jobs in [1, 3] {
            let queue = Arc::new(Mutex::new((0u32..40).collect::<Vec<_>>()));
            let sum = Arc::new(AtomicUsize::new(0));
            let pool = TaskPool::new(jobs, {
                let (queue, sum) = (queue.clone(), sum.clone());
                move || -> Option<Task> {
                    let item = queue.lock().ok()?.pop()?;
                    let sum = sum.clone();
                    Some(Box::new(move || {
                        sum.fetch_add(item as usize, Ordering::Relaxed);
                    }))
                }
            });
            assert_eq!(pool.workers(), jobs.max(1));
            pool.join();
            assert_eq!(sum.load(Ordering::Relaxed), (0..40).sum::<usize>());
        }
    }

    #[test]
    fn task_pool_survives_panicking_task() {
        use std::sync::Arc;
        // One of four tasks panics; the worker must keep serving the rest.
        let queue = Arc::new(Mutex::new(vec![0u32, 1, 2, 3]));
        let ok = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(1, {
            let (queue, ok) = (queue.clone(), ok.clone());
            move || -> Option<Task> {
                let item = queue.lock().ok()?.pop()?;
                let ok = ok.clone();
                Some(Box::new(move || {
                    assert_ne!(item, 2, "injected task failure");
                    ok.fetch_add(1, Ordering::Relaxed);
                }))
            }
        });
        pool.join();
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn shard_barrier_cycles_in_lock_step() {
        use std::sync::atomic::AtomicUsize;
        const WINDOWS: usize = 25;
        let windows_done = AtomicUsize::new(0);
        run_sharded_workers(4, |_, barrier| {
            for w in 0..WINDOWS {
                // No shard may observe a sibling more than one window ahead:
                // the counter after window w is in [4w, 4(w + 1)).
                let seen = windows_done.load(Ordering::Relaxed);
                assert!(seen >= w.saturating_sub(1) * 4, "barrier skipped");
                windows_done.fetch_add(1, Ordering::Relaxed);
                barrier.wait().expect("no shard panics in this test");
            }
        });
        assert_eq!(windows_done.load(Ordering::Relaxed), 4 * WINDOWS);
    }

    #[test]
    fn shard_panic_inside_a_barrier_window_does_not_deadlock_siblings() {
        use std::sync::atomic::AtomicUsize;
        // Regression (ISSUE 8): a panic inside a lookahead window used to
        // strand the sibling shards in Barrier::wait forever. Seed several
        // (culprit shard, panic window) combinations; each run must
        // terminate and resurface the culprit's original payload.
        const SHARDS: usize = 4;
        const WINDOWS: usize = 10;
        for seed in [3u64, 17, 40, 91] {
            let culprit = (seed % SHARDS as u64) as usize;
            let bad_window = (seed / SHARDS as u64 % WINDOWS as u64) as usize;
            let escaped = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_sharded_workers(SHARDS, |s, barrier| {
                    for w in 0..WINDOWS {
                        if s == culprit && w == bad_window {
                            panic!("shard {s} died in window {w} (seed {seed})");
                        }
                        if barrier.wait().is_err() {
                            // Poisoned: a sibling panicked. Stop the window
                            // loop instead of waiting on a dead barrier.
                            escaped.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                })
            }));
            let payload = result.expect_err("culprit panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(
                msg,
                format!("shard {culprit} died in window {bad_window} (seed {seed})"),
                "original payload must survive the barrier"
            );
            assert_eq!(
                escaped.load(Ordering::Relaxed),
                SHARDS - 1,
                "every sibling must observe the poison and exit (seed {seed})"
            );
        }
    }

    #[test]
    fn shard_barrier_wait_after_poison_fails_fast() {
        let barrier = ShardBarrier::new(2);
        barrier.poison(Box::new("dead"));
        assert!(barrier.is_poisoned());
        assert_eq!(barrier.wait(), Err(BarrierPoisoned));
        let payload = barrier.take_panic().expect("payload retained");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"dead"));
        assert!(barrier.take_panic().is_none(), "payload taken once");
    }

    #[test]
    fn spawn_detached_runs_and_joins() {
        use std::sync::Arc;
        let hit = Arc::new(AtomicBool::new(false));
        let handle = spawn_detached("pool-test", {
            let hit = hit.clone();
            move || hit.store(true, Ordering::Relaxed)
        });
        handle.join().expect("detached thread panicked");
        assert!(hit.load(Ordering::Relaxed));
    }
}
