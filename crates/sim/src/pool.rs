//! Scoped worker pool for deterministic fan-out of independent simulations.
//!
//! The registry is unreachable in this build environment, so the pool is
//! hand-rolled on [`std::thread::scope`] instead of pulling in rayon. It is
//! deliberately minimal: a shared atomic work index hands out job indices to
//! `jobs` worker threads, every worker buffers `(index, result)` pairs
//! locally, and the buffers are merged and sorted by index after the scope
//! joins. Because each job is a pure function of its index and results are
//! returned in input order, the output is **bit-identical for every `jobs`
//! value** — OS scheduling decides only *when* a job runs, never what it
//! computes or where its result lands.
//!
//! This file is the one sanctioned thread-spawning site in the workspace:
//! the determinism lint's `wallclock`/ambient-entropy rule (d2) flags
//! `thread::spawn` / `thread::scope` / `available_parallelism` everywhere
//! else, because ad-hoc concurrency is the easiest way to let scheduling
//! nondeterminism leak into model state. See DESIGN.md §9.
//!
//! # Example
//!
//! ```
//! use wsg_sim::pool;
//!
//! let squares = pool::run_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Input order is preserved regardless of the worker count:
//! assert_eq!(squares, pool::run_indexed(1, 8, |i| i * i));
//! ```

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1 when it
/// cannot be determined. This is the only machine-dependent input to the
/// pool, and it only ever changes wall-clock time, never results.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(n - 1)` across up to `jobs` worker threads and
/// returns the results **in index order**.
///
/// With `jobs <= 1` (or fewer than two items) everything runs on the calling
/// thread in index order — byte-for-byte the serial path, with no threads
/// spawned at all. `f` must be safe to call concurrently from multiple
/// threads; each index is handed to exactly one worker.
///
/// # Panics
///
/// Propagates the first panic raised by `f`. A panicking job aborts the
/// pool promptly: the other workers stop at their next job boundary
/// instead of draining the remaining indices, so a failure in run 2 of a
/// 500-run sweep does not surface minutes later.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, n, f, |_| {})
}

/// [`run_indexed`] with a completion observer: `on_done(i)` runs after job
/// `i` finishes (on the worker thread that ran it, in completion — not
/// index — order). The observer exists for live progress reporting; it must
/// not influence results.
pub fn run_indexed_with<T, F, O>(jobs: usize, n: usize, f: F, on_done: O) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(usize) + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n)
            .map(|i| {
                let r = f(i);
                on_done(i);
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let merged: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    while !aborted.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Catch the payload here rather than letting it
                        // unwind the worker, so the abort flag is raised the
                        // moment the panic happens and the other workers cut
                        // their job loops short.
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(r) => {
                                local.push((i, r));
                                on_done(i);
                            }
                            Err(payload) => {
                                aborted.store(true, Ordering::Relaxed);
                                if let Ok(mut slot) = first_panic.lock() {
                                    slot.get_or_insert(payload);
                                }
                                break;
                            }
                        }
                    }
                    // A poisoned mutex means another worker panicked while
                    // merging; that panic is about to be propagated below,
                    // so this worker's results are moot.
                    if let Ok(mut out) = merged.lock() {
                        out.extend(local);
                    }
                })
            })
            .collect();
        // Join every worker before re-raising, so the scope never has to
        // auto-join a panicked thread (which would mask the payload). Only
        // an observer panic can reach join() now; keep its payload too.
        for worker in workers {
            if let Err(payload) = worker.join() {
                aborted.store(true, Ordering::Relaxed);
                if let Ok(mut slot) = first_panic.lock() {
                    slot.get_or_insert(payload);
                }
            }
        }
    });
    let payload = match first_panic.into_inner() {
        Ok(slot) => slot,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    let mut pairs = match merged.into_inner() {
        Ok(pairs) => pairs,
        Err(poisoned) => poisoned.into_inner(),
    };
    pairs.sort_by_key(|&(i, _)| i);
    assert_eq!(pairs.len(), n, "worker pool lost results");
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(1, 100, |i| i as u64 * 3 + 1);
        for jobs in [2, 4, 7] {
            assert_eq!(serial, run_indexed(jobs, 100, |i| i as u64 * 3 + 1));
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = run_indexed(4, 0, |_| 1);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_keep_input_order_under_skew() {
        // Early indices do the most work, so late indices finish first on a
        // multi-core host; order must still be by index.
        let out = run_indexed(4, 32, |i| {
            let spin = (32 - i) * 10_000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn worker_panic_aborts_remaining_jobs_promptly() {
        use std::sync::atomic::AtomicUsize;
        // Job 0 panics immediately; every other job takes ~2 ms. Without
        // the abort flag the surviving worker would drain all remaining
        // indices before the panic resurfaces; with it, only the handful of
        // jobs already in flight run to completion.
        let executed = AtomicUsize::new(0);
        let n = 256;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(2, n, |i| {
                if i == 0 {
                    panic!("early failure");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                executed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "early failure");
        assert!(
            executed.load(Ordering::Relaxed) < n / 2,
            "pool drained {} of {n} jobs after a panic",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn observer_sees_every_completed_job() {
        use std::sync::atomic::AtomicUsize;
        for jobs in [1, 4] {
            let done = AtomicUsize::new(0);
            let out = run_indexed_with(
                jobs,
                50,
                |i| i * 2,
                |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(out.len(), 50);
            assert_eq!(done.load(Ordering::Relaxed), 50);
        }
    }
}
