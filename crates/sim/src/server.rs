//! Analytic multi-server queue model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// An analytic model of `k` identical servers fed by a FIFO queue.
///
/// Callers admit requests in nondecreasing arrival order; the pool computes
/// the cycle at which a server becomes available and returns the request's
/// `(start, completion)` times. The model reserves server time immediately,
/// which is exact for FIFO service with deterministic service times.
///
/// This is used for bandwidth-limited resources whose internal queue does not
/// need to be inspected mid-flight (HBM channels, the GMMU walker pool in
/// analytic mode). The IOMMU, whose queue *is* inspected (redirection, PW
/// revisit, buffer-pressure sampling), is modelled with explicit events in
/// the `hdpat` crate instead.
///
/// # Example
///
/// ```
/// let mut pool = wsg_sim::ServerPool::new(2);
/// // Two walkers: the first two requests start immediately, the third waits.
/// assert_eq!(pool.admit(0, 500), (0, 500));
/// assert_eq!(pool.admit(0, 500), (0, 500));
/// assert_eq!(pool.admit(0, 500), (500, 1000));
/// ```
#[derive(Debug, Clone)]
pub struct ServerPool {
    free_at: BinaryHeap<Reverse<Cycle>>,
    servers: usize,
    busy_cycles: u64,
    admitted: u64,
    total_wait: u64,
}

impl ServerPool {
    /// Creates a pool of `servers` identical servers, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(0));
        }
        Self {
            free_at,
            servers,
            busy_cycles: 0,
            admitted: 0,
            total_wait: 0,
        }
    }

    /// Admits a request arriving at `arrival` needing `service` cycles.
    ///
    /// Returns `(start, completion)` where `start >= arrival`.
    pub fn admit(&mut self, arrival: Cycle, service: Cycle) -> (Cycle, Cycle) {
        let Reverse(earliest) = match self.free_at.pop() {
            Some(entry) => entry,
            // One slot per server is pushed at construction and re-pushed
            // below, and the constructor rejects zero servers.
            None => unreachable!("pool has at least one server"),
        };
        let start = earliest.max(arrival);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy_cycles += service;
        self.admitted += 1;
        self.total_wait += start - arrival;
        (start, done)
    }

    /// The earliest cycle at which any server is free.
    pub fn next_free(&self) -> Cycle {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(0)
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total cycles of service performed (sums over servers).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Mean queueing delay over all admitted requests, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.admitted as f64
        }
    }

    /// Server utilization in `[0, 1]` over the horizon `[0, end]`.
    ///
    /// Clamped to `[0, 1]`: reservations made near `end` can extend past the
    /// caller's horizon (busy cycles are booked at admission), and a
    /// utilization above 1 is meaningless.
    pub fn utilization(&self, end: Cycle) -> f64 {
        if end == 0 {
            return 0.0;
        }
        (self.busy_cycles as f64 / (end as f64 * self.servers as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        ServerPool::new(0);
    }

    #[test]
    fn single_server_serializes() {
        let mut p = ServerPool::new(1);
        assert_eq!(p.admit(0, 10), (0, 10));
        assert_eq!(p.admit(0, 10), (10, 20));
        assert_eq!(p.admit(25, 10), (25, 35));
    }

    #[test]
    fn idle_server_starts_at_arrival() {
        let mut p = ServerPool::new(4);
        assert_eq!(p.admit(100, 7), (100, 107));
    }

    #[test]
    fn k_servers_give_k_way_parallelism() {
        let mut p = ServerPool::new(3);
        for _ in 0..3 {
            assert_eq!(p.admit(0, 100), (0, 100));
        }
        // Fourth request queues behind the earliest finisher.
        assert_eq!(p.admit(0, 100), (100, 200));
    }

    #[test]
    fn wait_accounting() {
        let mut p = ServerPool::new(1);
        p.admit(0, 10);
        p.admit(0, 10); // waits 10
        assert_eq!(p.mean_wait(), 5.0);
        assert_eq!(p.admitted(), 2);
        assert_eq!(p.busy_cycles(), 20);
    }

    #[test]
    fn utilization_bounds() {
        let mut p = ServerPool::new(2);
        p.admit(0, 50);
        let u = p.utilization(100);
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(p.utilization(0), 0.0);
    }

    #[test]
    fn utilization_is_clamped_to_one() {
        let mut p = ServerPool::new(2);
        // 500 busy cycles booked against a 10-cycle horizon: the raw ratio
        // is 25×, but utilization must still read as full, not more.
        p.admit(0, 500);
        assert_eq!(p.utilization(10), 1.0);
    }

    #[test]
    fn next_free_tracks_earliest_server() {
        let mut p = ServerPool::new(2);
        p.admit(0, 10);
        assert_eq!(p.next_free(), 0);
        p.admit(0, 20);
        assert_eq!(p.next_free(), 10);
    }
}
