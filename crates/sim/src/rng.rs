//! Deterministic random number generation for workloads.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, reproducible random number generator.
///
/// All stochastic behaviour in the simulator (workload address streams,
/// irregular access patterns) flows through `SimRng`, so a `(benchmark,
/// seed)` pair fully determines a simulation. The generator is ChaCha8 —
/// fast, portable, and stable across platforms, unlike `rand`'s default
/// `StdRng` whose algorithm is unspecified.
///
/// # Example
///
/// ```
/// use wsg_sim::SimRng;
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `label` distinguishes
    /// children of the same parent (e.g. one stream per GPM).
    pub fn derive(&self, label: u64) -> Self {
        let mut seed_gen = self.inner.clone();
        let base = seed_gen.next_u64();
        Self::seeded(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform sample from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen_bool(p)
    }

    /// A Zipf-like sample over `0..n` with exponent `s` (approximated by
    /// inverse-CDF over harmonic weights; exact for the small `n` used by
    /// workload hot-set selection).
    ///
    /// Used to model power-law node popularity in the PageRank workload.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf needs a non-empty domain");
        // Rejection-free approximate inverse transform (Gray et al. style).
        let u: f64 = self.inner.gen_range(0.0..1.0);
        if (s - 1.0).abs() < 1e-9 {
            // H(x) ~ ln(x); invert.
            let hn = (n as f64).ln().max(f64::MIN_POSITIVE);
            let x = (u * hn).exp();
            (x as u64).min(n - 1)
        } else {
            let a = 1.0 - s;
            let hn = ((n as f64).powf(a) - 1.0) / a;
            let x = (1.0 + u * hn * a).powf(1.0 / a);
            (x as u64 - 1).min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_children_are_independent() {
        let parent = SimRng::seeded(9);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let mut c1_again = parent.derive(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1b = parent.derive(1);
        c1b.next_u64();
        assert_ne!(c1b.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_bad_probability() {
        SimRng::seeded(0).chance(1.5);
    }

    #[test]
    fn zipf_in_domain_and_skewed() {
        let mut r = SimRng::seeded(5);
        let n = 1000;
        let mut head = 0u64;
        let trials = 10_000;
        for _ in 0..trials {
            let v = r.zipf(n, 0.9);
            assert!(v < n);
            if v < 10 {
                head += 1;
            }
        }
        // A Zipf(0.9) over 1000 items concentrates far more than 1% of mass
        // on the 10 hottest items (uniform would give ~1%).
        assert!(head as f64 / trials as f64 > 0.1, "head mass {head}");
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn zipf_rejects_empty_domain() {
        SimRng::seeded(0).zipf(0, 1.0);
    }
}
