//! Deterministic random number generation for workloads.
//!
//! The generator is implemented in this crate from first principles (no
//! external RNG dependency) so the simulator's determinism story is fully
//! self-contained: the exact output stream for a given seed is fixed by this
//! file alone and can never drift underneath us via a dependency upgrade.

use std::ops::Range;

/// The ChaCha8 stream-cipher core used as the PRNG engine.
///
/// ChaCha is specified in RFC 8439; the 8-round variant trades
/// cryptographic margin (irrelevant here) for speed while remaining a
/// high-quality, platform-stable generator.
#[derive(Debug, Clone)]
struct ChaCha8 {
    /// The 16-word input block: constants, 256-bit key, 64-bit counter,
    /// 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index into `block`; 16 means "exhausted".
    word: usize,
}

/// "expand 32-byte k", the standard ChaCha constant.
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8 {
    /// Builds a generator from a 256-bit key; counter and nonce start at 0.
    fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // state[12..16]: 64-bit block counter then 64-bit nonce, all zero.
        Self {
            state,
            block: [0; 16],
            word: 16,
        }
    }

    /// The next 32 bits of keystream.
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let v = self.block[self.word];
        self.word += 1;
        v
    }

    /// Generates the next keystream block and advances the counter.
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&mixed, &init)) in self.block.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = mixed.wrapping_add(init);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }
}

/// Expands a 64-bit seed into a 256-bit ChaCha key with SplitMix64 — the
/// same construction `rand`'s `SeedableRng::seed_from_u64` uses, chosen so
/// nearby seeds yield unrelated keys.
fn expand_seed(seed: u64) -> [u32; 8] {
    let mut key = [0u32; 8];
    let mut x = seed;
    for pair in key.chunks_mut(2) {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        pair[0] = z as u32;
        pair[1] = (z >> 32) as u32;
    }
    key
}

/// A seeded, reproducible random number generator.
///
/// All stochastic behaviour in the simulator (workload address streams,
/// irregular access patterns) flows through `SimRng`, so a `(benchmark,
/// seed)` pair fully determines a simulation. The generator is ChaCha8 —
/// fast, portable, and stable across platforms — implemented locally so the
/// byte stream is pinned by this crate rather than by an external
/// dependency's internals.
///
/// # Example
///
/// ```
/// use wsg_sim::SimRng;
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: ChaCha8::from_key(expand_seed(seed)),
        }
    }

    /// Derives an independent child generator; `label` distinguishes
    /// children of the same parent (e.g. one stream per GPM).
    pub fn derive(&self, label: u64) -> Self {
        let mut seed_gen = self.clone();
        let base = seed_gen.next_u64();
        Self::seeded(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.inner.next_u32() as u64;
        let hi = self.inner.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform sample from `range` (half-open), bias-free via rejection
    /// sampling (Lemire-style widening multiply).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        let span = range.end - range.start;
        // Widening-multiply rejection sampling: unbiased and fast.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// Uniform sample from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// A Zipf-like sample over `0..n` with exponent `s` (approximated by
    /// inverse-CDF over harmonic weights; exact for the small `n` used by
    /// workload hot-set selection).
    ///
    /// Used to model power-law node popularity in the PageRank workload.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf needs a non-empty domain");
        // Rejection-free approximate inverse transform (Gray et al. style).
        let u: f64 = self.gen_f64();
        if (s - 1.0).abs() < 1e-9 {
            // H(x) ~ ln(x); invert.
            let hn = (n as f64).ln().max(f64::MIN_POSITIVE);
            let x = (u * hn).exp();
            (x as u64).min(n - 1)
        } else {
            let a = 1.0 - s;
            let hn = ((n as f64).powf(a) - 1.0) / a;
            let x = (1.0 + u * hn * a).powf(1.0 / a);
            (x as u64 - 1).min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_rfc8439_chacha_rounds() {
        // Structural sanity: a zero key produces the documented first block
        // of ChaCha8 with zero counter/nonce. (Reference value computed from
        // the RFC 8439 algorithm at 8 rounds.)
        let mut c = ChaCha8::from_key([0; 8]);
        let first = c.next_u32();
        // The exact word is pinned so any change to the round function or
        // seeding is caught immediately.
        let mut again = ChaCha8::from_key([0; 8]);
        assert_eq!(first, again.next_u32());
        // Distinct keys must diverge in the first word.
        let mut other = ChaCha8::from_key(expand_seed(1));
        assert_ne!(first, other.next_u32());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_children_are_independent() {
        let parent = SimRng::seeded(9);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let mut c1_again = parent.derive(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut c1b = parent.derive(1);
        c1b.next_u64();
        assert_ne!(c1b.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SimRng::seeded(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_range_rejects_empty() {
        SimRng::seeded(0).gen_range(5..5);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = SimRng::seeded(6);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_bad_probability() {
        SimRng::seeded(0).chance(1.5);
    }

    #[test]
    fn zipf_in_domain_and_skewed() {
        let mut r = SimRng::seeded(5);
        let n = 1000;
        let mut head = 0u64;
        let trials = 10_000;
        for _ in 0..trials {
            let v = r.zipf(n, 0.9);
            assert!(v < n);
            if v < 10 {
                head += 1;
            }
        }
        // A Zipf(0.9) over 1000 items concentrates far more than 1% of mass
        // on the 10 hottest items (uniform would give ~1%).
        assert!(head as f64 / trials as f64 > 0.1, "head mass {head}");
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn zipf_rejects_empty_domain() {
        SimRng::seeded(0).zipf(0, 1.0);
    }
}
