//! Runtime invariant auditing (the `audit` feature).
//!
//! The simulator's correctness rests on a handful of conservation and
//! ordering invariants — event time never runs backwards, every injected
//! flit is delivered, caches never exceed capacity, queues stay bounded,
//! table entries are neither lost nor duplicated. Debug builds check some of
//! these with `debug_assert!`; this module makes them checkable in *release*
//! builds too, where the figure-generating runs actually happen.
//!
//! The design is hook-based, mirroring scheduler auditors in event-driven
//! architecture simulators: structures accept an [`AuditHandle`] and invoke
//! [`Audit`] callbacks at state transitions. Hooks are purely observational
//! — an attached auditor must never change simulation behaviour, so an
//! audited run produces byte-identical metrics to an unaudited one.
//! Violations are recorded, not panicked on, so one run reports them all;
//! the simulation driver asserts the count is zero at the end.
//!
//! Everything here is compiled only with `--features audit`; default builds
//! carry no cost (not even a branch — the hook fields themselves are
//! feature-gated out).

// lint:allow-module(shared-mut): this sink is the sanctioned shared-state
// boundary — handles are Rc<RefCell<..>> by design (DESIGN.md §13), and
// model structures only ever hold the Option<AuditHandle> defined here.
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::Cycle;

/// What kind of structure a [`Site`] identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// The discrete-event queue.
    Queue,
    /// One directional mesh link.
    Link,
    /// A TLB or other set-associative translation cache.
    Tlb,
    /// A walker pool's PW-queue.
    Walker,
    /// The IOMMU redirection table.
    Redirection,
    /// Anything else.
    Other,
}

/// Identifies one audited structure instance (e.g. GPM 3's L2 TLB, or the
/// east-bound link out of tile (2, 1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// The structure's kind.
    pub kind: SiteKind,
    /// Instance id, assigned by whoever attaches the auditor; for links, an
    /// encoding of the endpoint coordinates.
    pub id: u64,
}

impl Site {
    /// Builds a site id.
    pub fn new(kind: SiteKind, id: u64) -> Self {
        Self { kind, id }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.kind, self.id)
    }
}

/// Observer hooks invoked by audited structures at state transitions.
///
/// All hooks have empty defaults so an auditor implements only what it
/// checks. Implementations must be observational: no hook may influence the
/// simulation (they receive copies of primitive state, not structure
/// references, to make that hard to get wrong).
pub trait Audit {
    /// An event was scheduled: current queue time `now`, event time `time`.
    fn on_push(&mut self, now: Cycle, time: Cycle) {
        let _ = (now, time);
    }

    /// An event was popped: previous queue time `prev`, event time `time`.
    fn on_pop(&mut self, prev: Cycle, time: Cycle) {
        let _ = (prev, time);
    }

    /// `EventQueue::push_after` was asked for a delay that overflows the
    /// cycle counter (`now + delay > Cycle::MAX`). Debug builds panic right
    /// after reporting; release builds clamp to `Cycle::MAX` and continue,
    /// so this hook is the only release-mode record of the wrap.
    fn on_delay_overflow(&mut self, now: Cycle, delay: Cycle) {
        let _ = (now, delay);
    }

    /// A packet of `bytes` was injected into link `site`.
    fn on_inject(&mut self, site: Site, bytes: u64) {
        let _ = (site, bytes);
    }

    /// A packet of `bytes` finished traversing link `site`.
    fn on_deliver(&mut self, site: Site, bytes: u64) {
        let _ = (site, bytes);
    }

    /// An entry was added at `site`; `occupancy` is the post-insert count
    /// and `capacity` the structure's bound (0 = unbounded).
    fn on_fill(&mut self, site: Site, occupancy: usize, capacity: usize) {
        let _ = (site, occupancy, capacity);
    }

    /// An entry was removed at `site`; `occupancy` is the post-remove count.
    fn on_evict(&mut self, site: Site, occupancy: usize) {
        let _ = (site, occupancy);
    }
}

/// A shared, clonable handle to an auditor, held by audited structures.
///
/// Cloning shares the underlying auditor (it is an `Rc`), so one auditor
/// can observe the queue, the mesh, and every translation structure of a
/// simulation at once.
#[derive(Clone)]
pub struct AuditHandle(Rc<RefCell<dyn Audit>>);

impl AuditHandle {
    /// Wraps a fresh auditor.
    pub fn new<A: Audit + 'static>(auditor: A) -> Self {
        Self(Rc::new(RefCell::new(auditor)))
    }

    /// Shares an existing auditor the caller keeps concrete access to.
    pub fn of<A: Audit + 'static>(auditor: &Rc<RefCell<A>>) -> Self {
        Self(Rc::clone(auditor) as Rc<RefCell<dyn Audit>>)
    }

    /// Runs `f` against the auditor.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn Audit) -> R) -> R {
        f(&mut *self.0.borrow_mut())
    }
}

impl fmt::Debug for AuditHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AuditHandle(..)")
    }
}

/// How many violation descriptions [`ConservationAuditor`] keeps verbatim;
/// further violations are counted but not described.
const MAX_RECORDED: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct LinkFlow {
    injected_packets: u64,
    delivered_packets: u64,
    injected_bytes: u64,
    delivered_bytes: u64,
}

/// The standard auditor: checks time monotonicity, link flit conservation,
/// occupancy bounds, and entry conservation.
///
/// Per-site bookkeeping uses `BTreeMap` so an audited run's own reporting is
/// deterministic (the simulator-wide D1 lint applies here too).
///
/// Checks performed:
///
/// * **Event-time monotonicity** — `on_push` with `time < now` or `on_pop`
///   with `time < prev` is a violation (release-build analogue of the
///   queue's `debug_assert`s).
/// * **Link conservation** — at [`ConservationAuditor::finish`], every
///   link's injected packet and byte counts must equal its delivered counts.
/// * **Occupancy bounds** — every `on_fill` with a nonzero capacity must
///   report `occupancy <= capacity`.
/// * **Entry conservation** — the auditor mirrors each site's occupancy from
///   the fill/evict stream (seeded from the first report); a reported
///   occupancy diverging from the mirror means entries were lost or
///   duplicated, e.g. across a page migration's redirection-table updates.
#[derive(Debug, Default)]
pub struct ConservationAuditor {
    violations: Vec<String>,
    total: u64,
    expected: std::collections::BTreeMap<Site, i64>,
    links: std::collections::BTreeMap<u64, LinkFlow>,
    finished: bool,
}

impl ConservationAuditor {
    /// Creates an auditor with no recorded observations.
    pub fn new() -> Self {
        Self::default()
    }

    fn violation(&mut self, msg: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(msg);
        }
    }

    fn track(&mut self, site: Site, delta: i64, occupancy: usize) {
        let diverged = match self.expected.entry(site) {
            std::collections::btree_map::Entry::Vacant(v) => {
                // First observation of this site: trust its report and
                // mirror from here on.
                v.insert(occupancy as i64);
                None
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                *o.get_mut() += delta;
                let expected = *o.get();
                if expected != occupancy as i64 {
                    // Re-sync so one bug does not cascade into a violation
                    // per subsequent operation.
                    *o.get_mut() = occupancy as i64;
                    Some(expected)
                } else {
                    None
                }
            }
        };
        if let Some(expected) = diverged {
            self.violation(format!(
                "{site}: occupancy {occupancy} diverged from mirrored count {expected} \
                 (entries lost or duplicated)"
            ));
        }
    }

    /// Total violations observed so far (recorded or not).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Descriptions of the first [`MAX_RECORDED`] violations.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Runs end-of-simulation checks (link conservation) and returns the
    /// final violation count. Idempotent.
    pub fn finish(&mut self) -> u64 {
        if !self.finished {
            self.finished = true;
            let pending: Vec<String> = self
                .links
                .iter()
                .filter(|(_, f)| {
                    f.injected_packets != f.delivered_packets
                        || f.injected_bytes != f.delivered_bytes
                })
                .map(|(id, f)| {
                    format!(
                        "{}: conservation broken: injected {} packets/{} bytes, \
                         delivered {} packets/{} bytes",
                        Site::new(SiteKind::Link, *id),
                        f.injected_packets,
                        f.injected_bytes,
                        f.delivered_packets,
                        f.delivered_bytes,
                    )
                })
                .collect();
            for msg in pending {
                self.violation(msg);
            }
        }
        self.total
    }
}

impl Audit for ConservationAuditor {
    fn on_push(&mut self, now: Cycle, time: Cycle) {
        if time < now {
            self.violation(format!("event scheduled in the past: {time} < {now}"));
        }
    }

    fn on_pop(&mut self, prev: Cycle, time: Cycle) {
        if time < prev {
            self.violation(format!("queue time ran backwards: {time} < {prev}"));
        }
    }

    fn on_delay_overflow(&mut self, now: Cycle, delay: Cycle) {
        self.violation(format!(
            "push_after delay overflow: {now} + {delay} wraps the cycle counter"
        ));
    }

    fn on_inject(&mut self, site: Site, bytes: u64) {
        let f = self.links.entry(site.id).or_default();
        f.injected_packets += 1;
        f.injected_bytes += bytes;
    }

    fn on_deliver(&mut self, site: Site, bytes: u64) {
        let f = self.links.entry(site.id).or_default();
        f.delivered_packets += 1;
        f.delivered_bytes += bytes;
    }

    fn on_fill(&mut self, site: Site, occupancy: usize, capacity: usize) {
        if capacity > 0 && occupancy > capacity {
            self.violation(format!(
                "{site}: occupancy {occupancy} exceeds capacity {capacity}"
            ));
        }
        self.track(site, 1, occupancy);
    }

    fn on_evict(&mut self, site: Site, occupancy: usize) {
        self.track(site, -1, occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> Site {
        Site::new(SiteKind::Tlb, 7)
    }

    #[test]
    fn delay_overflow_is_a_violation() {
        let mut a = ConservationAuditor::new();
        a.on_delay_overflow(u64::MAX - 3, 10);
        assert_eq!(a.total_violations(), 1);
        assert!(a.violations()[0].contains("push_after delay overflow"));
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut a = ConservationAuditor::new();
        a.on_push(0, 10);
        a.on_pop(0, 10);
        a.on_inject(Site::new(SiteKind::Link, 1), 64);
        a.on_deliver(Site::new(SiteKind::Link, 1), 64);
        a.on_fill(site(), 1, 8);
        a.on_evict(site(), 0);
        assert_eq!(a.finish(), 0);
        assert!(a.violations().is_empty());
    }

    #[test]
    fn past_push_is_flagged() {
        let mut a = ConservationAuditor::new();
        a.on_push(100, 50);
        assert_eq!(a.total_violations(), 1);
        assert!(a.violations()[0].contains("in the past"));
    }

    #[test]
    fn backwards_pop_is_flagged() {
        let mut a = ConservationAuditor::new();
        a.on_pop(100, 50);
        assert_eq!(a.total_violations(), 1);
    }

    #[test]
    fn unbalanced_link_is_flagged_at_finish() {
        let mut a = ConservationAuditor::new();
        a.on_inject(Site::new(SiteKind::Link, 3), 64);
        assert_eq!(a.total_violations(), 0, "only checked at finish");
        assert_eq!(a.finish(), 1);
        assert!(a.violations()[0].contains("conservation"));
    }

    #[test]
    fn over_capacity_fill_is_flagged() {
        let mut a = ConservationAuditor::new();
        a.on_fill(site(), 9, 8);
        assert_eq!(a.total_violations(), 1);
        assert!(a.violations()[0].contains("exceeds capacity"));
    }

    #[test]
    fn occupancy_divergence_is_flagged_once() {
        let mut a = ConservationAuditor::new();
        a.on_fill(site(), 1, 8);
        a.on_fill(site(), 2, 8);
        // Structure claims 5 after one more fill: entries appeared from
        // nowhere.
        a.on_fill(site(), 5, 8);
        assert_eq!(a.total_violations(), 1);
        // Mirror re-synced: the next consistent op is clean.
        a.on_evict(site(), 4);
        assert_eq!(a.total_violations(), 1);
    }

    #[test]
    fn first_report_seeds_the_mirror() {
        let mut a = ConservationAuditor::new();
        // Auditor attached to a structure that already held 5 entries.
        a.on_evict(site(), 4);
        a.on_evict(site(), 3);
        assert_eq!(a.finish(), 0);
    }

    #[test]
    fn handle_shares_one_auditor() {
        let concrete = Rc::new(RefCell::new(ConservationAuditor::new()));
        let h1 = AuditHandle::of(&concrete);
        let h2 = h1.clone();
        h1.with(|a| a.on_push(10, 5));
        h2.with(|a| a.on_push(10, 5));
        assert_eq!(concrete.borrow().total_violations(), 2);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut a = ConservationAuditor::new();
        a.on_inject(Site::new(SiteKind::Link, 1), 8);
        assert_eq!(a.finish(), 1);
        assert_eq!(a.finish(), 1);
    }
}
