//! Structured, deterministic request-lifecycle tracing (feature `trace`).
//!
//! A [`TraceSink`] records cycle-stamped span events for each translation
//! request's journey through the simulator: issue, L1/L2 TLB probes, cuckoo
//! filter checks, local walks, per-hop NoC timing, and the remote
//! peer-cache / redirection / IOMMU resolution path. Model structures hold
//! an `Option<TraceHandle>` exactly like the `audit` feature's optional
//! auditor handle (see `audit.rs`), so a build without the feature — or a
//! run that never attaches a sink — pays nothing and simulates identically.
//!
//! # Determinism contract (DESIGN.md §10)
//!
//! * Hooks are purely observational: they never influence event ordering,
//!   timing, or any simulated state.
//! * Events are recorded in simulation order (the engine is
//!   single-threaded per run), so two traced runs of the same
//!   `(benchmark, seed)` produce byte-identical [`TraceSink::to_chrome_json`]
//!   and [`TraceSink::stage_csv`] output.
//! * Stage names are static, JSON-safe identifiers; summaries iterate a
//!   `BTreeMap` keyed by stage name (lint rule d1).
//!
//! # Example
//!
//! ```
//! use wsg_sim::trace::{TraceHandle, TraceSink};
//!
//! let sink = TraceSink::shared();
//! let handle = TraceHandle::of(&sink);
//! handle.with(|s| {
//!     s.set_context(100, 7);
//!     s.instant("tlb.miss", 3, 0x42);
//!     s.complete("remote", 100, 250, 3, 0);
//! });
//! let sink = sink.borrow();
//! assert_eq!(sink.len(), 2);
//! assert!(sink.to_chrome_json().contains("\"name\":\"remote\""));
//! ```

// lint:allow-module(shared-mut): this sink is the sanctioned shared-state
// boundary — handles are Rc<RefCell<..>> by design (DESIGN.md §13), and
// model structures only ever hold the Option<TraceHandle> defined here.
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::time::Cycle;

/// Sentinel request id for events not attributable to a single request.
pub const NO_REQ: u64 = u64::MAX;

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A closed interval: start cycle plus duration.
    Complete,
    /// A point event at a single cycle.
    Instant,
}

/// One cycle-stamped trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span or point event.
    pub kind: SpanKind,
    /// Static stage name (e.g. `"tlb.miss"`, `"remote"`); must be JSON-safe.
    pub stage: &'static str,
    /// Event cycle (start cycle for [`SpanKind::Complete`]).
    pub t: Cycle,
    /// Duration in cycles (0 for instants).
    pub dur: Cycle,
    /// Request id, or [`NO_REQ`].
    pub req: u64,
    /// Structure instance id (same numbering as the audit sites).
    pub site: u64,
    /// Stage-specific payload (VPN, bytes, hop count, …).
    pub arg: u64,
}

/// Latency distribution of one stage, in cycles.
///
/// Percentiles use the nearest-rank method on the recorded durations, so
/// they are exact integers and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total cycles across spans.
    pub sum: u64,
    /// Shortest span.
    pub min: u64,
    /// Longest span.
    pub max: u64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Nearest-rank percentile of a sorted, non-empty sample: the smallest value
/// with at least `pct`% of the sample at or below it.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&pct));
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

impl StageStats {
    /// Stats over a set of span durations (sorted internally).
    pub fn from_durations(mut durations: Vec<u64>) -> Self {
        if durations.is_empty() {
            return Self::default();
        }
        durations.sort_unstable();
        let count = durations.len() as u64;
        let sum = durations.iter().sum();
        Self {
            count,
            sum,
            min: durations[0],
            max: durations[durations.len() - 1],
            p50: percentile(&durations, 50),
            p95: percentile(&durations, 95),
            p99: percentile(&durations, 99),
        }
    }

    /// Mean span length in cycles (0 for an empty stage).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Collects trace events for one simulation run.
///
/// The engine stamps a *context* — the current cycle and request id — at
/// each event dispatch; leaf structures (TLBs, filters, walker pools, MSHRs)
/// then emit [`TraceSink::instant`] events without needing either value
/// threaded through their APIs. Span emitters with exact interval knowledge
/// (the engine, the mesh, HBM) use [`TraceSink::complete`] directly.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    now: Cycle,
    req: u64,
}

impl TraceSink {
    /// An empty sink with context `(cycle 0, NO_REQ)`.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            now: 0,
            req: NO_REQ,
        }
    }

    /// An empty sink ready to be shared with [`TraceHandle::of`].
    pub fn shared() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new()))
    }

    /// Sets the current `(cycle, request)` context used to stamp instants.
    pub fn set_context(&mut self, now: Cycle, req: u64) {
        self.now = now;
        self.req = req;
    }

    /// Records a point event at the current context cycle.
    pub fn instant(&mut self, stage: &'static str, site: u64, arg: u64) {
        self.events.push(TraceEvent {
            kind: SpanKind::Instant,
            stage,
            t: self.now,
            dur: 0,
            req: self.req,
            site,
            arg,
        });
    }

    /// Records a closed `[start, start + dur]` span attributed to the
    /// current context request.
    pub fn complete(&mut self, stage: &'static str, start: Cycle, dur: Cycle, site: u64, arg: u64) {
        self.events.push(TraceEvent {
            kind: SpanKind::Complete,
            stage,
            t: start,
            dur,
            req: self.req,
            site,
            arg,
        });
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-stage latency distributions over all [`SpanKind::Complete`]
    /// events, keyed and ordered by stage name.
    pub fn stage_summary(&self) -> BTreeMap<&'static str, StageStats> {
        let mut durations: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == SpanKind::Complete {
                durations.entry(ev.stage).or_default().push(ev.dur);
            }
        }
        durations
            .into_iter()
            .map(|(stage, d)| (stage, StageStats::from_durations(d)))
            .collect()
    }

    /// Renders the events as Chrome trace-event JSON (loadable in Perfetto
    /// or `chrome://tracing`).
    ///
    /// Complete spans become `"ph":"X"` events and instants `"ph":"i"`;
    /// `ts`/`dur` are in cycles, one track (`tid`) per request (`-1` for
    /// events without a request), and the structure site and payload ride in
    /// `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid: i64 = if ev.req == NO_REQ { -1 } else { ev.req as i64 };
            let _ = match ev.kind {
                SpanKind::Complete => write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"wsg\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"site\":{},\"arg\":{}}}}}",
                    ev.stage, ev.t, ev.dur, tid, ev.site, ev.arg
                ),
                SpanKind::Instant => write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"wsg\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"site\":{},\"arg\":{}}}}}",
                    ev.stage, ev.t, tid, ev.site, ev.arg
                ),
            };
        }
        out.push_str("]}");
        out
    }

    /// Renders the per-stage latency table as CSV
    /// (`stage,count,sum,mean,p50,p95,p99,min,max`; cycles).
    pub fn stage_csv(&self) -> String {
        let mut out = String::from("stage,count,sum,mean,p50,p95,p99,min,max\n");
        for (stage, s) in self.stage_summary() {
            let _ = writeln!(
                out,
                "{stage},{},{},{:.2},{},{},{},{},{}",
                s.count,
                s.sum,
                s.mean(),
                s.p50,
                s.p95,
                s.p99,
                s.min,
                s.max
            );
        }
        out
    }
}

/// A cloneable, shared handle to a [`TraceSink`], mirroring the audit
/// feature's `AuditHandle`. Model structures store `Option<TraceHandle>`
/// (the sanctioned optional-handle pattern, enforced by xtask lint rule d5)
/// and emit through [`TraceHandle::with`].
#[derive(Debug, Clone)]
pub struct TraceHandle(Rc<RefCell<TraceSink>>);

impl TraceHandle {
    /// Wraps a fresh sink.
    pub fn new(sink: TraceSink) -> Self {
        Self(Rc::new(RefCell::new(sink)))
    }

    /// Shares an existing sink, so the caller keeps access to the recorded
    /// events after the simulation is done with the handle.
    pub fn of(sink: &Rc<RefCell<TraceSink>>) -> Self {
        Self(Rc::clone(sink))
    }

    /// Runs `f` with mutable access to the sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut TraceSink) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instants_use_the_engine_context() {
        let mut s = TraceSink::new();
        s.set_context(42, 7);
        s.instant("tlb.hit", 3, 0x1000);
        s.set_context(50, NO_REQ);
        s.instant("mshr.full", 9, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].t, 42);
        assert_eq!(s.events()[0].req, 7);
        assert_eq!(s.events()[1].req, NO_REQ);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        let s = StageStats::from_durations(vec![4, 2, 8]);
        assert_eq!((s.count, s.sum, s.min, s.max), (3, 14, 2, 8));
        assert_eq!(s.p50, 4);
        assert_eq!(s.p99, 8);
    }

    #[test]
    fn empty_stage_stats_are_zero() {
        let s = StageStats::from_durations(Vec::new());
        assert_eq!(s, StageStats::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_all_collapse_to_it() {
        let s = StageStats::from_durations(vec![42]);
        assert_eq!((s.count, s.sum, s.min, s.max), (1, 42, 42, 42));
        assert_eq!((s.p50, s.p95, s.p99), (42, 42, 42));
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn tie_heavy_distribution_percentiles() {
        // One fast outlier among nine identical values: nearest-rank p50,
        // p95 and p99 must all land on the tie, never interpolate.
        let mut d = vec![5; 9];
        d.push(1);
        let s = StageStats::from_durations(d);
        assert_eq!((s.count, s.min, s.max), (10, 1, 5));
        assert_eq!((s.p50, s.p95, s.p99), (5, 5, 5));
        // All-identical samples: every statistic is that value.
        let s = StageStats::from_durations(vec![7; 100]);
        assert_eq!((s.min, s.p50, s.p95, s.p99, s.max), (7, 7, 7, 7, 7));
    }

    #[test]
    fn low_percentile_rank_clamps_to_first_sample() {
        // rank = ceil(len * pct / 100) clamped to >= 1: with two samples a
        // 1st percentile still selects the smallest.
        assert_eq!(percentile(&[3, 9], 1), 3);
        assert_eq!(percentile(&[3, 9], 50), 3);
        assert_eq!(percentile(&[3, 9], 51), 9);
    }

    #[test]
    fn chrome_json_has_both_phases_and_balanced_structure() {
        let mut s = TraceSink::new();
        s.set_context(10, 1);
        s.instant("cuckoo.miss", 2, 5);
        s.complete("remote", 10, 90, 2, 0);
        let json = s.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":90"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn stage_csv_sums_match_events() {
        let mut s = TraceSink::new();
        s.set_context(0, 1);
        s.complete("remote", 0, 100, 0, 0);
        s.complete("remote", 0, 300, 0, 0);
        s.complete("walk", 0, 10, 0, 0);
        let csv = s.stage_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("stage,count,sum,mean,p50,p95,p99,min,max")
        );
        assert_eq!(
            lines.next(),
            Some("remote,2,400,200.00,100,300,300,100,300")
        );
        assert_eq!(lines.next(), Some("walk,1,10,10.00,10,10,10,10,10"));
    }

    #[test]
    fn handle_shares_one_sink() {
        let sink = TraceSink::shared();
        let a = TraceHandle::of(&sink);
        let b = a.clone();
        a.with(|s| s.instant("issue", 0, 0));
        b.with(|s| s.instant("issue", 0, 1));
        assert_eq!(sink.borrow().len(), 2);
    }
}
