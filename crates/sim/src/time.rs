//! Simulation time.
//!
//! All components of the simulator share a single clock domain at 1 GHz (the
//! CU clock of Table I in the paper), so time is expressed directly in
//! cycles.

/// A point in simulated time, in cycles of the 1 GHz system clock.
pub type Cycle = u64;

/// Converts a cycle count to seconds assuming the given clock frequency in Hz.
///
/// # Example
///
/// ```
/// let secs = wsg_sim::time::cycles_to_seconds(2_000_000_000, 1.0e9);
/// assert!((secs - 2.0).abs() < 1e-12);
/// ```
pub fn cycles_to_seconds(cycles: Cycle, freq_hz: f64) -> f64 {
    cycles as f64 / freq_hz
}

/// Converts a byte count and a bandwidth (bytes per cycle) into the number of
/// cycles needed to serialize the bytes, rounding up and never returning 0
/// for a non-empty transfer.
///
/// # Example
///
/// ```
/// // 768 GB/s at 1 GHz is 768 bytes/cycle; a 64 B cacheline takes 1 cycle.
/// assert_eq!(wsg_sim::time::serialization_cycles(64, 768.0), 1);
/// assert_eq!(wsg_sim::time::serialization_cycles(0, 768.0), 0);
/// assert_eq!(wsg_sim::time::serialization_cycles(1536, 768.0), 2);
/// ```
pub fn serialization_cycles(bytes: u64, bytes_per_cycle: f64) -> Cycle {
    if bytes == 0 {
        return 0;
    }
    debug_assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
    // lint:allow(float-cycle): bandwidth configs are fractional (bytes per
    // cycle); this ceil is the one sanctioned float->Cycle conversion, and
    // its inputs are small enough that f64 rounding is exact.
    let cycles = (bytes as f64 / bytes_per_cycle).ceil() as Cycle;
    cycles.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversion() {
        assert_eq!(cycles_to_seconds(1_000_000_000, 1.0e9), 1.0);
        assert_eq!(cycles_to_seconds(0, 1.0e9), 0.0);
    }

    #[test]
    fn serialization_rounds_up() {
        assert_eq!(serialization_cycles(1, 768.0), 1);
        assert_eq!(serialization_cycles(768, 768.0), 1);
        assert_eq!(serialization_cycles(769, 768.0), 2);
    }

    #[test]
    fn serialization_zero_bytes_is_free() {
        assert_eq!(serialization_cycles(0, 1.0), 0);
    }

    #[test]
    fn serialization_minimum_one_cycle() {
        // Even a tiny packet on a huge link occupies the link for one cycle.
        assert_eq!(serialization_cycles(1, 1.0e9), 1);
    }
}
