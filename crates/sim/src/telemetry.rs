//! Deterministic, epoch-sampled counter registry (feature `telemetry`).
//!
//! A [`TelemetrySink`] is a "flight recorder" for the simulator: model
//! structures register named counters and gauges once at attach time, the
//! engine *publishes* current values and *samples* the registry every
//! `interval` cycles of simulated time, and each counter accumulates into a
//! [`TimeSeries`] with one sample per epoch. Structures hold an
//! `Option<TelemetryHandle>` exactly like the `audit` and `trace` features'
//! optional handles (lint rule d5), so a build without the feature — or a
//! run that never attaches a sink — pays nothing and simulates identically.
//!
//! # Pull model
//!
//! Telemetry never rides the hot path. Components keep the lifetime
//! counters they already maintain (hits, misses, occupancy, …); at each
//! epoch boundary the engine calls every component's `publish_telemetry`,
//! which writes the *current cumulative* values into the registry with
//! [`TelemetrySink::set`], then [`TelemetrySink::sample_up_to`] folds them
//! into per-epoch windows:
//!
//! * [`CounterKind::Counter`] records the **delta** since the previous
//!   epoch (activity per epoch; gap epochs record 0).
//! * [`CounterKind::Gauge`] records the **absolute** value (occupancy,
//!   queue depth; gap epochs repeat the last value).
//!
//! Because the engine is single-threaded per run and sampling happens at
//! deterministic simulated-time boundaries, two runs of the same
//! configuration produce byte-identical exports, independent of host,
//! `--jobs`, or whether request tracing is also enabled.
//!
//! # Determinism contract (DESIGN.md §12)
//!
//! * Hooks are purely observational: they never influence event ordering,
//!   timing, or any simulated state.
//! * `Metrics::to_deterministic_string` is byte-identical with telemetry on
//!   and off (`ci.sh` gates this).
//! * Exports iterate `Vec`s in registration order — no hash maps anywhere
//!   in this module (lint rule d6 needs no exemption here).
//!
//! # Example
//!
//! ```
//! use wsg_sim::telemetry::{CounterKind, TelemetryHandle, TelemetrySink};
//!
//! let sink = TelemetrySink::shared(100);
//! let handle = TelemetryHandle::of(&sink);
//! let hits = handle.with(|t| t.register("tlb.hits", 3, None, CounterKind::Counter));
//! handle.with(|t| {
//!     t.set(hits, 7);      // published cumulative value
//!     t.sample_up_to(250); // epochs [0,100) and [100,200) elapsed
//! });
//! let sink = sink.borrow();
//! assert_eq!(sink.series(hits).windows().count(), 2);
//! assert!(sink.to_csv().contains("tlb.hits"));
//! ```

// lint:allow-module(shared-mut): this sink is the sanctioned shared-state
// boundary — handles are Rc<RefCell<..>> by design (DESIGN.md §13), and
// model structures only ever hold the Option<TelemetryHandle> defined here.
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::stats::TimeSeries;
use crate::time::Cycle;

/// How a registered metric is folded into per-epoch samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Monotone cumulative count; each epoch records the delta since the
    /// previous epoch.
    Counter,
    /// Instantaneous level; each epoch records the absolute value.
    Gauge,
}

/// Registration record for one counter or gauge.
#[derive(Debug, Clone)]
pub struct CounterDef {
    /// Static metric name (e.g. `"tlb.hits"`); must be JSON-safe.
    pub name: &'static str,
    /// Structure instance id (same numbering as the audit/trace sites).
    pub site: u64,
    /// Wafer tile the metric belongs to, if spatially attributable; tagged
    /// metrics feed the [`Heatmap`] export.
    pub tile: Option<(u16, u16)>,
    /// Delta or absolute sampling.
    pub kind: CounterKind,
}

/// Final per-tile value grids for spatially tagged metrics.
///
/// One `width * height` grid per metric name, row-major (`y * width + x`),
/// built from the final cumulative value of every tile-tagged counter.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Mesh width in tiles.
    pub width: u16,
    /// Mesh height in tiles.
    pub height: u16,
    /// `(metric name, row-major grid)` in first-registration order.
    pub metrics: Vec<(&'static str, Vec<u64>)>,
}

impl Heatmap {
    /// Renders the grids as long-form CSV (`metric,x,y,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,x,y,value\n");
        for (name, grid) in &self.metrics {
            for y in 0..self.height {
                for x in 0..self.width {
                    let v = grid[y as usize * self.width as usize + x as usize];
                    let _ = writeln!(out, "{name},{x},{y},{v}");
                }
            }
        }
        out
    }
}

/// Central counter registry and epoch sampler for one simulation run.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    interval: Cycle,
    defs: Vec<CounterDef>,
    /// Latest published cumulative value per counter.
    values: Vec<u64>,
    /// Value captured at the previous epoch sample (for Counter deltas).
    last: Vec<u64>,
    /// One per-epoch series per counter; window width == `interval`.
    series: Vec<TimeSeries>,
    /// Number of fully sampled epochs so far.
    epochs: u64,
    /// Mesh dimensions for the heatmap export, if a grid was announced.
    grid: Option<(u16, u16)>,
}

impl TelemetrySink {
    /// An empty registry sampling every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Cycle) -> Self {
        assert!(interval > 0, "sample interval must be positive");
        Self {
            interval,
            defs: Vec::new(),
            values: Vec::new(),
            last: Vec::new(),
            series: Vec::new(),
            epochs: 0,
            grid: None,
        }
    }

    /// An empty registry ready to be shared with [`TelemetryHandle::of`].
    pub fn shared(interval: Cycle) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new(interval)))
    }

    /// Sampling interval in cycles.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// The simulated time at which the next unsampled epoch ends — the
    /// engine publishes and samples once event time reaches this boundary.
    pub fn next_sample_at(&self) -> Cycle {
        (self.epochs + 1) * self.interval
    }

    /// Announces the wafer mesh dimensions so tile-tagged metrics can be
    /// rendered as a [`Heatmap`].
    pub fn set_grid(&mut self, width: u16, height: u16) {
        self.grid = Some((width, height));
    }

    /// Registers a metric and returns its dense id. Consecutive calls
    /// return consecutive ids, so a component can keep just its first id.
    pub fn register(
        &mut self,
        name: &'static str,
        site: u64,
        tile: Option<(u16, u16)>,
        kind: CounterKind,
    ) -> usize {
        self.defs.push(CounterDef {
            name,
            site,
            tile,
            kind,
        });
        self.values.push(0);
        self.last.push(0);
        self.series.push(TimeSeries::new(self.interval));
        self.defs.len() - 1
    }

    /// Publishes the current cumulative value of counter `id`.
    pub fn set(&mut self, id: usize, value: u64) {
        self.values[id] = value;
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry has no metrics.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Registration record of counter `id`.
    pub fn def(&self, id: usize) -> &CounterDef {
        &self.defs[id]
    }

    /// Per-epoch series of counter `id`.
    pub fn series(&self, id: usize) -> &TimeSeries {
        &self.series[id]
    }

    /// Samples every epoch that ended at or before `now` and has not been
    /// sampled yet.
    ///
    /// Epoch `k` covers `[k*interval, (k+1)*interval)` and is sampled once
    /// simulated time reaches its end. Values cannot change between engine
    /// events, so when several silent epochs elapse at once each still
    /// receives a correct sample (0 delta for counters, a repeated level
    /// for gauges).
    pub fn sample_up_to(&mut self, now: Cycle) {
        while (self.epochs + 1) * self.interval <= now {
            let at = self.epochs * self.interval;
            for i in 0..self.defs.len() {
                let v = self.values[i];
                let sample = match self.defs[i].kind {
                    CounterKind::Counter => v - self.last[i],
                    CounterKind::Gauge => v,
                };
                self.last[i] = v;
                self.series[i].record(at, sample);
            }
            self.epochs += 1;
        }
    }

    /// Closes the recording at simulated time `end`: samples every fully
    /// elapsed epoch, then records the trailing partial epoch (if any) so
    /// no activity is dropped. Call once, after the last event.
    pub fn finalize(&mut self, end: Cycle) {
        self.sample_up_to(end);
        if end > self.epochs * self.interval {
            let at = self.epochs * self.interval;
            for i in 0..self.defs.len() {
                let v = self.values[i];
                let sample = match self.defs[i].kind {
                    CounterKind::Counter => v - self.last[i],
                    CounterKind::Gauge => v,
                };
                self.last[i] = v;
                self.series[i].record(at, sample);
            }
            self.epochs += 1;
        }
    }

    /// Renders every sample as long-form CSV
    /// (`name,site,tile_x,tile_y,t,value`; empty tile columns for metrics
    /// without a tile tag). Rows appear in registration order, then time
    /// order — byte-identical for identical runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,site,tile_x,tile_y,t,value\n");
        for (i, def) in self.defs.iter().enumerate() {
            let (tx, ty) = match def.tile {
                Some((x, y)) => (x.to_string(), y.to_string()),
                None => (String::new(), String::new()),
            };
            for w in self.series[i].windows() {
                let _ = writeln!(
                    out,
                    "{},{},{tx},{ty},{},{}",
                    def.name, def.site, w.start, w.sum
                );
            }
        }
        out
    }

    /// Renders the registry as a self-describing JSON document:
    /// `{"interval":…,"counters":[{"name":…,"site":…,"tile":[x,y]|null,`
    /// `"kind":"counter"|"gauge","samples":[…]}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.defs.len() * 96);
        let _ = write!(out, "{{\"interval\":{},\"counters\":[", self.interval);
        for (i, def) in self.defs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"site\":{},", def.name, def.site);
            match def.tile {
                Some((x, y)) => {
                    let _ = write!(out, "\"tile\":[{x},{y}],");
                }
                None => out.push_str("\"tile\":null,"),
            }
            let kind = match def.kind {
                CounterKind::Counter => "counter",
                CounterKind::Gauge => "gauge",
            };
            let _ = write!(out, "\"kind\":\"{kind}\",\"samples\":[");
            for (j, w) in self.series[i].windows().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", w.sum);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The comma-joined Chrome trace-event JSON objects for every sample,
    /// as Perfetto **counter-track** events (`"ph":"C"`, `ts` in cycles —
    /// the same clock as [`crate::trace::TraceSink::to_chrome_json`] spans).
    ///
    /// One track per `(name, site)` pair; tile-tagged metrics embed the
    /// tile in the track name so per-tile series stay separate.
    pub fn chrome_events_json(&self) -> String {
        let mut out = String::new();
        for (i, def) in self.defs.iter().enumerate() {
            let track = match def.tile {
                Some((x, y)) => format!("{}@{}x{}", def.name, x, y),
                None => format!("{}@{}", def.name, def.site),
            };
            for w in self.series[i].windows() {
                if !out.is_empty() {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{track}\",\"cat\":\"wsg\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":1,\"args\":{{\"value\":{}}}}}",
                    w.start, w.sum
                );
            }
        }
        out
    }

    /// Renders all samples as a standalone Chrome trace-event JSON document
    /// of counter tracks (loadable in Perfetto or `chrome://tracing`).
    pub fn to_perfetto_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&self.chrome_events_json());
        out.push_str("]}");
        out
    }

    /// Splices the counter-track events into an existing Chrome trace-event
    /// document (as produced by `TraceSink::to_chrome_json`), so spans and
    /// counters line up on one Perfetto timeline. `trace_json` must end in
    /// `]}`.
    ///
    /// # Panics
    ///
    /// Panics if `trace_json` is not a `{"traceEvents":[…]}` document.
    pub fn merge_chrome_json(&self, trace_json: &str) -> String {
        let Some(body) = trace_json.strip_suffix("]}") else {
            panic!("not a traceEvents JSON document");
        };
        let counters = self.chrome_events_json();
        let mut out = String::with_capacity(trace_json.len() + counters.len() + 4);
        out.push_str(body);
        if !counters.is_empty() {
            if !body.ends_with('[') {
                out.push(',');
            }
            out.push_str(&counters);
        }
        out.push_str("]}");
        out
    }

    /// Builds the per-tile spatial snapshot from every tile-tagged metric's
    /// final cumulative value. Returns `None` when no grid was announced
    /// via [`TelemetrySink::set_grid`].
    pub fn heatmap(&self) -> Option<Heatmap> {
        let (width, height) = self.grid?;
        let cells = width as usize * height as usize;
        let mut metrics: Vec<(&'static str, Vec<u64>)> = Vec::new();
        for (i, def) in self.defs.iter().enumerate() {
            let Some((x, y)) = def.tile else { continue };
            let idx = match metrics.iter().position(|(n, _)| *n == def.name) {
                Some(idx) => idx,
                None => {
                    metrics.push((def.name, vec![0; cells]));
                    metrics.len() - 1
                }
            };
            metrics[idx].1[y as usize * width as usize + x as usize] += self.values[i];
        }
        Some(Heatmap {
            width,
            height,
            metrics,
        })
    }
}

/// A cloneable, shared handle to a [`TelemetrySink`], mirroring the trace
/// feature's `TraceHandle`. Model structures store
/// `Option<TelemetryHandle>` (the sanctioned optional-handle pattern,
/// enforced by xtask lint rule d5) and publish through
/// [`TelemetryHandle::with`].
#[derive(Debug, Clone)]
pub struct TelemetryHandle(Rc<RefCell<TelemetrySink>>);

impl TelemetryHandle {
    /// Wraps a fresh sink.
    pub fn new(sink: TelemetrySink) -> Self {
        Self(Rc::new(RefCell::new(sink)))
    }

    /// Shares an existing sink, so the caller keeps access to the recorded
    /// samples after the simulation is done with the handle.
    pub fn of(sink: &Rc<RefCell<TelemetrySink>>) -> Self {
        Self(Rc::clone(sink))
    }

    /// Runs `f` with mutable access to the sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut TelemetrySink) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "sample interval must be positive")]
    fn zero_interval_rejected() {
        TelemetrySink::new(0);
    }

    #[test]
    fn counters_record_deltas_and_gauges_record_levels() {
        let mut s = TelemetrySink::new(100);
        let c = s.register("hits", 1, None, CounterKind::Counter);
        let g = s.register("occ", 1, None, CounterKind::Gauge);
        s.set(c, 4);
        s.set(g, 9);
        s.sample_up_to(100);
        s.set(c, 10);
        s.set(g, 2);
        s.sample_up_to(200);
        let cw: Vec<u64> = s.series(c).windows().map(|w| w.sum).collect();
        let gw: Vec<u64> = s.series(g).windows().map(|w| w.sum).collect();
        assert_eq!(cw, vec![4, 6]);
        assert_eq!(gw, vec![9, 2]);
    }

    #[test]
    fn silent_epochs_sample_zero_delta_and_level() {
        let mut s = TelemetrySink::new(10);
        let c = s.register("hits", 0, None, CounterKind::Counter);
        let g = s.register("occ", 0, None, CounterKind::Gauge);
        s.set(c, 5);
        s.set(g, 3);
        // Time jumps straight to cycle 40: epochs 0..=3 all elapsed.
        s.sample_up_to(40);
        let cw: Vec<u64> = s.series(c).windows().map(|w| w.sum).collect();
        let gw: Vec<u64> = s.series(g).windows().map(|w| w.sum).collect();
        assert_eq!(cw, vec![5, 0, 0, 0]);
        assert_eq!(gw, vec![3, 3, 3, 3]);
    }

    #[test]
    fn finalize_records_the_partial_epoch() {
        let mut s = TelemetrySink::new(100);
        let c = s.register("hits", 0, None, CounterKind::Counter);
        s.set(c, 2);
        s.sample_up_to(100);
        s.set(c, 7);
        s.finalize(150);
        let cw: Vec<u64> = s.series(c).windows().map(|w| w.sum).collect();
        assert_eq!(cw, vec![2, 5]);
    }

    #[test]
    fn finalize_on_boundary_adds_no_extra_epoch() {
        let mut s = TelemetrySink::new(100);
        let c = s.register("hits", 0, None, CounterKind::Counter);
        s.set(c, 2);
        s.finalize(200);
        assert_eq!(s.series(c).windows().count(), 2);
    }

    #[test]
    fn csv_and_json_cover_all_samples() {
        let mut s = TelemetrySink::new(10);
        let c = s.register("mesh.bytes", 4, Some((1, 2)), CounterKind::Counter);
        s.set(c, 8);
        s.finalize(25);
        let csv = s.to_csv();
        assert_eq!(csv.lines().next(), Some("name,site,tile_x,tile_y,t,value"));
        assert!(csv.contains("mesh.bytes,4,1,2,0,8"));
        assert!(csv.contains("mesh.bytes,4,1,2,20,0"));
        let json = s.to_json();
        assert!(json.contains("\"tile\":[1,2]"));
        assert!(json.contains("\"samples\":[8,0,0]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn perfetto_counter_tracks_are_balanced() {
        let mut s = TelemetrySink::new(10);
        let c = s.register("walkers.busy", 2, None, CounterKind::Gauge);
        s.set(c, 3);
        s.finalize(20);
        let json = s.to_perfetto_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("walkers.busy@2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_splices_counters_into_span_documents() {
        let mut s = TelemetrySink::new(10);
        let c = s.register("hits", 0, None, CounterKind::Counter);
        s.set(c, 1);
        s.finalize(10);
        let merged = s.merge_chrome_json("{\"traceEvents\":[{\"name\":\"span\"}]}");
        assert!(merged.contains("\"name\":\"span\""));
        assert!(merged.contains("\"ph\":\"C\""));
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());
        // Merging into an empty document must not leave a dangling comma.
        let merged = s.merge_chrome_json("{\"traceEvents\":[]}");
        assert!(!merged.contains("[,"));
    }

    #[test]
    fn heatmap_aggregates_tile_tagged_metrics() {
        let mut s = TelemetrySink::new(10);
        s.set_grid(2, 2);
        let a = s.register("mesh.bytes", 0, Some((0, 0)), CounterKind::Counter);
        let b = s.register("mesh.bytes", 1, Some((1, 1)), CounterKind::Counter);
        let _ = s.register("untiled", 9, None, CounterKind::Counter);
        s.set(a, 5);
        s.set(b, 7);
        let hm = s.heatmap().expect("grid announced");
        assert_eq!((hm.width, hm.height), (2, 2));
        assert_eq!(hm.metrics.len(), 1);
        assert_eq!(hm.metrics[0].1, vec![5, 0, 0, 7]);
        let csv = hm.to_csv();
        assert!(csv.contains("mesh.bytes,1,1,7"));
    }

    #[test]
    fn heatmap_requires_a_grid() {
        let s = TelemetrySink::new(10);
        assert!(s.heatmap().is_none());
    }

    #[test]
    fn handle_shares_one_sink() {
        let sink = TelemetrySink::shared(10);
        let a = TelemetryHandle::of(&sink);
        let b = a.clone();
        let id = a.with(|t| t.register("x", 0, None, CounterKind::Gauge));
        b.with(|t| t.set(id, 42));
        assert_eq!(sink.borrow().values[id], 42);
    }
}
