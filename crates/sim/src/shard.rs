//! Sharded event scheduling with conservative lookahead (DESIGN.md §15).
//!
//! This module is the substrate for partitioning one simulation's event
//! population across *shards* (tile groups of the wafer) while preserving
//! the serial engine's exact `(time, sequence)` delivery order:
//!
//! * [`ShardQueue`] — a per-shard calendar queue, structurally the same
//!   ring-of-buckets design as [`crate::EventQueue`] but keyed by an
//!   explicit *global* stamp instead of a per-queue insertion counter, so
//!   entries arriving out of stamp order (mailbox flushes at window
//!   barriers) still merge into the right delivery slot.
//! * [`ShardSet`] — the merge coordinator: it owns one `ShardQueue` per
//!   shard and delivers events in the exact global `(time, stamp)` order.
//!   It runs in one of two modes. The *windowed* drive ([`ShardSet::new`])
//!   is the full conservative-lookahead protocol — per-destination
//!   mailboxes, fixed-length windows, cross-shard exchange only at window
//!   barriers — exactly what a threaded drive needs for isolation
//!   (`crate::pool::run_sharded_workers` exercises it cross-thread). The
//!   *direct* drive ([`ShardSet::new_direct`]) is the single-threaded
//!   coordinator's fast path: cross-shard routes insert straight into the
//!   destination queue and no barrier ever runs, which provably delivers
//!   the same stream (see [`ShardSet::new_direct`]) while still enforcing
//!   the lookahead contract at runtime.
//!
//! # The conservative-lookahead argument
//!
//! Let `L` be the minimum latency of any cross-shard message (for a wafer
//! mesh: one link traversal plus the serialization floor — see
//! `Mesh::min_transit_cycles` in `wsg-noc`). While the coordinator executes
//! events inside the window `[W, W + L)`, any cross-shard message such an
//! event emits departs at some `t >= W` and therefore arrives at
//! `t + L >= W + L` — at or beyond the window end. Messages parked in
//! mailboxes during the window can thus never be *due* inside it, so each
//! shard can exhaust its own queue up to the window end without seeing its
//! siblings' traffic; flushing mailboxes at the barrier is sufficient for
//! correctness. [`ShardSet::route`] enforces the invariant at runtime and
//! panics on any cross-shard message that would violate it.
//!
//! # Determinism
//!
//! Every event carries a global stamp assigned at routing time in execution
//! order, so within any single timestamp the stamp order equals the serial
//! engine's insertion-sequence order. [`ShardSet::next_event`] always returns the
//! globally minimal `(time, stamp)` entry over all shard heads, which makes
//! the merged delivery order — and therefore every downstream metric,
//! audit, trace and telemetry artifact — byte-identical to serial
//! execution by construction. `tests/equivalence.rs` pins this against
//! [`crate::EventQueue`] under arbitrary interleavings.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Ring width of each shard's calendar; see [`crate::EventQueue`] for the
/// power-of-two / multiple-of-64 constraints. Narrower than the serial
/// queue's ring: a [`ShardSet`] keeps one ring *per shard* hot at once, so
/// a 4096-bucket ring measurably loses to 512 on fig14 (the bucket headers
/// alone are 128 KiB/shard at 4096) while the overflow heap stays cheap at
/// this width.
const HORIZON: usize = 512;
/// Occupancy bitmap words — one bit per bucket.
const WORDS: usize = HORIZON / 64;

/// A far-future entry: `(time, stamp)`-ordered via an inverted `Ord` so a
/// max-`BinaryHeap` pops the earliest first.
#[derive(Debug)]
struct Far<E> {
    time: Cycle,
    stamp: u64,
    payload: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.stamp == other.stamp
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.stamp.cmp(&self.stamp))
    }
}

/// One shard's calendar queue: a ring of per-cycle buckets (each kept in
/// ascending stamp order) over `[base, base + HORIZON)`, with a
/// `(time, stamp)`-sorted overflow heap beyond the horizon.
///
/// Unlike [`crate::EventQueue`], entries carry an externally assigned stamp
/// and may be inserted out of stamp order (a window barrier flushes mailbox
/// entries whose stamps predate later local pushes); a binary-search insert
/// keeps each bucket sorted, degrading to an O(1) append in the common
/// monotone case.
#[derive(Debug)]
pub struct ShardQueue<E> {
    /// Per-cycle buckets, ascending by stamp; index `time % HORIZON`.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bit per bucket.
    words: [u64; WORDS],
    /// Occupancy bit per `words` entry.
    summary: u64,
    /// Start of the ring window `[base, base + HORIZON)`. Monotone.
    base: Cycle,
    /// Entries resident in the ring.
    ring_len: usize,
    /// Entries at `time >= base + HORIZON`.
    overflow: BinaryHeap<Far<E>>,
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardQueue<E> {
    /// Creates an empty shard queue with its window based at cycle 0.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(HORIZON);
        buckets.resize_with(HORIZON, VecDeque::new);
        Self {
            buckets,
            words: [0; WORDS],
            summary: 0,
            base: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn set_bit(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
        self.summary |= 1u64 << (idx / 64);
    }

    fn clear_bit(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
        if self.words[idx / 64] == 0 {
            self.summary &= !(1u64 << (idx / 64));
        }
    }

    /// First occupied bucket in cyclic scan order starting at `from` (the
    /// window base slot). `None` iff the ring is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let w0 = from / 64;
        let high = self.words[w0] & (!0u64 << (from % 64));
        if high != 0 {
            return Some(w0 * 64 + high.trailing_zeros() as usize);
        }
        if self.summary == 0 {
            return None;
        }
        let rot = self.summary.rotate_right(((w0 + 1) % WORDS) as u32);
        if rot == 0 {
            return None;
        }
        let w = (w0 + 1 + rot.trailing_zeros() as usize) % WORDS;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }

    /// Absolute time of ring bucket `idx`, given the window base slot.
    fn bucket_time(&self, idx: usize, from: usize) -> Cycle {
        self.base + ((idx + HORIZON - from) % HORIZON) as Cycle
    }

    /// Advances the window base, migrating overflow entries that came
    /// inside the window into their ring buckets.
    fn advance_base(&mut self, to: Cycle) {
        self.base = to;
        while let Some(head) = self.overflow.peek() {
            if head.time - self.base >= HORIZON as Cycle {
                break;
            }
            let entry = match self.overflow.pop() {
                Some(e) => e,
                None => unreachable!("peeked entry vanished"),
            };
            self.insert_ring(entry.time, entry.stamp, entry.payload);
        }
    }

    /// Inserts into the ring bucket for `time`, keeping the bucket sorted
    /// by stamp. Caller guarantees `base <= time < base + HORIZON`.
    fn insert_ring(&mut self, time: Cycle, stamp: u64, payload: E) {
        let idx = (time % HORIZON as Cycle) as usize;
        let bucket = &mut self.buckets[idx];
        // Common case: stamps arrive in increasing order, so the insert
        // point is the back and partition_point touches one element.
        let at = bucket.partition_point(|(s, _)| *s < stamp);
        bucket.insert(at, (stamp, payload));
        self.set_bit(idx);
        self.ring_len += 1;
    }

    /// Inserts `payload` with the given global `stamp` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is below the queue's base (the
    /// coordinator never routes into a shard's past — cross-shard arrivals
    /// land at or beyond the window end, local pushes at or beyond `now`).
    pub fn push(&mut self, time: Cycle, stamp: u64, payload: E) {
        debug_assert!(
            time >= self.base,
            "shard event routed into the past: {} < {}",
            time,
            self.base
        );
        if time >= self.base && time - self.base < HORIZON as Cycle {
            self.insert_ring(time, stamp, payload);
        } else {
            self.overflow.push(Far {
                time,
                stamp,
                payload,
            });
        }
    }

    /// The `(time, stamp)` of this shard's earliest entry, or `None` when
    /// the shard is idle. Ring entries always precede overflow entries (the
    /// overflow tier starts a full horizon past the base).
    pub fn peek(&self) -> Option<(Cycle, u64)> {
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = self.next_occupied(from)?;
            let time = self.bucket_time(idx, from);
            let stamp = self.buckets[idx].front().map(|(s, _)| *s)?;
            return Some((time, stamp));
        }
        self.overflow.peek().map(|e| (e.time, e.stamp))
    }

    /// Removes and returns the earliest `(time, stamp, payload)` entry.
    pub fn pop(&mut self) -> Option<(Cycle, u64, E)> {
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = match self.next_occupied(from) {
                Some(i) => i,
                None => unreachable!("ring_len > 0 with an empty occupancy bitmap"),
            };
            let time = self.bucket_time(idx, from);
            let (stamp, payload) = match self.buckets[idx].pop_front() {
                Some(e) => e,
                None => unreachable!("occupied bit over an empty bucket"),
            };
            if self.buckets[idx].is_empty() {
                self.clear_bit(idx);
            }
            self.ring_len -= 1;
            self.advance_base(time);
            return Some((time, stamp, payload));
        }
        let e = self.overflow.pop()?;
        self.advance_base(e.time);
        Some((e.time, e.stamp, e.payload))
    }

    /// Removes the earliest *run* of entries — all at one timestamp, in
    /// ascending stamp order, stopping before `bound` (an exclusive
    /// `(time, stamp)` ceiling, typically the best head among the *other*
    /// shards of a [`ShardSet`]) — appending the payloads to `out`. Returns
    /// `(time, count)`, or `None` when the queue is empty.
    ///
    /// This is the batched form of [`ShardQueue::pop`]: a single bitmap
    /// scan and base advance serve the whole run, and every drained entry
    /// is exactly what consecutive pops under the same bound would have
    /// returned. The run never spans timestamps, so the caller can treat
    /// the returned `time` as constant across the batch.
    pub fn drain_run(
        &mut self,
        bound: Option<(Cycle, u64)>,
        out: &mut Vec<E>,
    ) -> Option<(Cycle, usize)> {
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = match self.next_occupied(from) {
                Some(i) => i,
                None => unreachable!("ring_len > 0 with an empty occupancy bitmap"),
            };
            let time = self.bucket_time(idx, from);
            let n = self.drain_bucket_run(idx, time, bound, out);
            if n == 0 {
                // The bound cuts before this queue's head: nothing to take.
                return None;
            }
            self.advance_base(time);
            return Some((time, n));
        }
        // Overflow head: pop it, then collect same-time siblings that the
        // base advance migrates into its ring bucket. The bucket holds only
        // time-`time` entries (the ring was empty, and a colliding slot
        // `time' ≡ time (mod HORIZON)` with `time' > time` is a full
        // horizon out, beyond the migration window).
        let head_ok = match (self.overflow.peek(), bound) {
            (Some(e), Some(b)) => (e.time, e.stamp) < b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if !head_ok {
            return None;
        }
        let e = match self.overflow.pop() {
            Some(e) => e,
            None => unreachable!("peeked entry vanished"),
        };
        let time = e.time;
        out.push(e.payload);
        self.advance_base(time);
        let idx = (time % HORIZON as Cycle) as usize;
        let mut n = 1;
        if self.words[idx / 64] & (1u64 << (idx % 64)) != 0 {
            n += self.drain_bucket_run(idx, time, bound, out);
        }
        Some((time, n))
    }

    /// Drains the `(time, stamp) < bound` prefix of bucket `idx` (all of it
    /// when `bound` is `None` or at a later time) into `out`, maintaining
    /// the occupancy bit and `ring_len`. Returns the count drained.
    fn drain_bucket_run(
        &mut self,
        idx: usize,
        time: Cycle,
        bound: Option<(Cycle, u64)>,
        out: &mut Vec<E>,
    ) -> usize {
        let bucket = &mut self.buckets[idx];
        let n = match bound {
            Some((bt, bs)) if bt == time => bucket.partition_point(|(s, _)| *s < bs),
            Some((bt, _)) if bt < time => 0,
            _ => bucket.len(),
        };
        out.extend(bucket.drain(..n).map(|(_, p)| p));
        if self.buckets[idx].is_empty() {
            self.clear_bit(idx);
        }
        self.ring_len -= n;
        n
    }

    /// Drains every entry at exactly `time` — which must be this queue's
    /// head time — appending `(stamp, tag, payload)` triples to `out` in
    /// ascending stamp order and advancing the window base. Returns the
    /// count drained. `tag` is threaded through untouched (the
    /// [`ShardSet`] merge uses it to remember the source shard).
    ///
    /// The whole run lives in one tier: a ring head owns its bucket
    /// exclusively (overflow entries sit at least a full horizon past the
    /// base, so none share `time`), and an overflow head's same-time
    /// siblings are adjacent in heap order.
    pub fn drain_time(&mut self, time: Cycle, tag: u32, out: &mut Vec<(u64, u32, E)>) -> usize {
        debug_assert_eq!(self.peek().map(|(t, _)| t), Some(time), "not the head time");
        let start = out.len();
        if self.ring_len > 0 {
            let idx = (time % HORIZON as Cycle) as usize;
            let bucket = &mut self.buckets[idx];
            let n = bucket.len();
            out.extend(bucket.drain(..).map(|(s, p)| (s, tag, p)));
            self.clear_bit(idx);
            self.ring_len -= n;
        } else {
            while let Some(head) = self.overflow.peek() {
                if head.time != time {
                    break;
                }
                let e = match self.overflow.pop() {
                    Some(e) => e,
                    None => unreachable!("peeked entry vanished"),
                };
                out.push((e.stamp, tag, e.payload));
            }
        }
        self.advance_base(time);
        out.len() - start
    }

    /// Number of entries currently pending.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Counters describing one sharded drive (all deterministic: they depend
/// only on the event population, partition and lookahead, never on host
/// state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookahead windows crossed (barriers executed); stays 0 under the
    /// direct drive, which needs no barriers.
    pub windows: u64,
    /// Events delivered through the merge.
    pub delivered: u64,
    /// Events routed in (equals `delivered` after a drained run).
    pub routed: u64,
    /// Events that crossed a shard boundary (mailboxed under the windowed
    /// drive, direct-inserted under the direct drive).
    pub cross: u64,
    /// Batches handed out by [`ShardSet::next_batch`] (single-timestamp
    /// runs; `delivered / batches` is the merge's amortization factor).
    pub batches: u64,
}

/// The lock-step lookahead coordinator over `n` shard queues.
///
/// The drive loop is: [`ShardSet::route`] the initial event population,
/// then alternate [`ShardSet::next_event`] (deliver the globally earliest event)
/// with routing whatever the delivered event's handler scheduled. `next`
/// advances the lookahead window and flushes mailboxes at barriers
/// internally; it returns `None` only when every queue and mailbox is
/// empty.
#[derive(Debug)]
pub struct ShardSet<E> {
    queues: Vec<ShardQueue<E>>,
    /// Cached copy of each queue's head `(time, stamp)`, kept in lock step
    /// with every queue mutation so the per-delivery winner scan reads a
    /// flat array instead of running one occupancy-bitmap scan per shard.
    heads: Vec<Option<(Cycle, u64)>>,
    /// Per-destination mailboxes holding cross-shard messages sent during
    /// the current window, in ascending stamp order.
    mailboxes: Vec<VecDeque<(Cycle, u64, E)>>,
    /// Lookahead window length: the minimum cross-shard delivery latency.
    lookahead: Cycle,
    /// Exclusive end of the current window; 0 before the first barrier.
    window_end: Cycle,
    /// The shard whose event [`ShardSet::next_event`] last delivered; `None`
    /// while seeding, when every routed event inserts directly.
    current: Option<usize>,
    /// Timestamp of the most recent delivery (the executing event's time);
    /// the direct drive's lookahead check anchors here.
    now: Cycle,
    /// Direct drive (see [`ShardSet::new_direct`]): cross-shard routes
    /// insert straight into the destination queue instead of parking in a
    /// mailbox, and delivery never waits on a window barrier.
    direct: bool,
    /// Reused merge buffer for [`ShardSet::next_batch`]: `(stamp, shard,
    /// payload)` triples drained from every shard due at the batch time.
    scratch: Vec<(u64, u32, E)>,
    /// Next global stamp.
    stamp: u64,
    stats: ShardStats,
}

impl<E> ShardSet<E> {
    /// Creates a coordinator for `shards` shards with the given `lookahead`
    /// window length.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `lookahead` is zero (a zero-length
    /// window cannot make progress).
    pub fn new(shards: usize, lookahead: Cycle) -> Self {
        assert!(shards > 0, "at least one shard required");
        assert!(lookahead > 0, "conservative lookahead must be positive");
        let mut queues = Vec::with_capacity(shards);
        queues.resize_with(shards, ShardQueue::new);
        let mut mailboxes = Vec::with_capacity(shards);
        mailboxes.resize_with(shards, VecDeque::new);
        Self {
            queues,
            heads: vec![None; shards],
            mailboxes,
            lookahead,
            window_end: 0,
            current: None,
            now: 0,
            direct: false,
            scratch: Vec::new(),
            stamp: 0,
            stats: ShardStats::default(),
        }
    }

    /// Creates a coordinator in *direct* mode: the single-threaded drive's
    /// fast path. Cross-shard routes insert straight into the destination
    /// queue (no mailbox) and delivery never waits on a window barrier.
    ///
    /// The delivered stream is identical to the windowed drive's: stamps
    /// are assigned at [`ShardSet::route`] time in both modes, delivery
    /// always takes the globally minimal `(time, stamp)` head, and a
    /// mailboxed entry could never have been that minimum while hidden —
    /// it is due at or past the window end, and the windowed drive only
    /// delivers heads strictly inside the window. Skipping the park/flush
    /// round-trip therefore changes no output byte; it only removes the
    /// barrier machinery a threaded drive needs for isolation. The
    /// conservative-lookahead contract is still enforced, in a strictly
    /// stronger form: every cross-shard route must be due at least one
    /// lookahead past the delivery in progress.
    pub fn new_direct(shards: usize, lookahead: Cycle) -> Self {
        let mut set = Self::new(shards, lookahead);
        set.direct = true;
        set
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The lookahead window length.
    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }

    /// Routes an event for shard `dest` at absolute `time`, assigning it
    /// the next global stamp. While an event is being executed (after a
    /// [`ShardSet::next_event`]), a route to any *other* shard is a cross-shard
    /// message: it parks in `dest`'s mailbox until the window barrier.
    ///
    /// # Panics
    ///
    /// Panics if a cross-shard message is due before the current window
    /// ends — that violates the conservative-lookahead contract the window
    /// length was derived from, and silently accepting it would let a
    /// threaded drive diverge from serial order.
    pub fn route(&mut self, dest: usize, time: Cycle, payload: E) {
        let stamp = self.stamp;
        self.stamp += 1;
        self.stats.routed += 1;
        match self.current {
            Some(src) if src != dest => {
                self.stats.cross += 1;
                if self.direct {
                    assert!(
                        time >= self.now.saturating_add(self.lookahead),
                        "conservative lookahead violated: shard {src} sent an event \
                         to shard {dest} due at {time} while executing cycle {} \
                         (lookahead {})",
                        self.now,
                        self.lookahead
                    );
                    self.enqueue(dest, time, stamp, payload);
                } else {
                    assert!(
                        time >= self.window_end,
                        "conservative lookahead violated: shard {src} sent an event \
                         to shard {dest} due at {time}, inside the window ending at \
                         {} (lookahead {})",
                        self.window_end,
                        self.lookahead
                    );
                    self.mailboxes[dest].push_back((time, stamp, payload));
                }
            }
            _ => self.enqueue(dest, time, stamp, payload),
        }
    }

    /// Queue insert plus head-cache maintenance — the one path by which
    /// entries reach a shard queue.
    #[inline]
    fn enqueue(&mut self, dest: usize, time: Cycle, stamp: u64, payload: E) {
        if self.heads[dest].is_none_or(|h| (time, stamp) < h) {
            self.heads[dest] = Some((time, stamp));
        }
        self.queues[dest].push(time, stamp, payload);
    }

    /// Flushes every mailbox into its destination queue (the window
    /// barrier), then re-bases the window at the earliest pending event.
    /// Returns `false` when nothing is pending anywhere.
    fn barrier_advance(&mut self) -> bool {
        for dest in 0..self.mailboxes.len() {
            while let Some((time, stamp, payload)) = self.mailboxes[dest].pop_front() {
                self.enqueue(dest, time, stamp, payload);
            }
        }
        let earliest = self.heads.iter().flatten().map(|&(t, _)| t).min();
        match earliest {
            Some(start) => {
                // Empty windows are skipped entirely: the next window bases
                // at the earliest pending event rather than stepping
                // lookahead-by-lookahead through dead time.
                self.window_end = start.saturating_add(self.lookahead);
                self.stats.windows += 1;
                true
            }
            None => false,
        }
    }

    /// Delivers the globally earliest `(time, stamp)` event, advancing
    /// lookahead windows (and flushing mailboxes at their barriers) as
    /// needed. Returns `(time, payload, shard)`, or `None` when the whole
    /// set has drained.
    pub fn next_event(&mut self) -> Option<(Cycle, E, usize)> {
        loop {
            let mut best: Option<(Cycle, u64, usize)> = None;
            for (s, head) in self.heads.iter().enumerate() {
                if let Some((t, stamp)) = *head {
                    let better = match best {
                        Some((bt, bs, _)) => (t, stamp) < (bt, bs),
                        None => true,
                    };
                    if better {
                        best = Some((t, stamp, s));
                    }
                }
            }
            if let Some((t, _, s)) = best {
                if self.direct || t < self.window_end {
                    let (time, _stamp, payload) = match self.queues[s].pop() {
                        Some(e) => e,
                        None => unreachable!("cached shard head vanished"),
                    };
                    self.heads[s] = self.queues[s].peek();
                    self.current = Some(s);
                    self.now = time;
                    self.stats.delivered += 1;
                    return Some((time, payload, s));
                }
            } else if self.direct {
                return None;
            }
            // Earliest event at or past the window end (or only mailbox
            // traffic left): cross the barrier. Progress is guaranteed —
            // after a successful advance the earliest event is strictly
            // inside the new window (lookahead > 0).
            if !self.barrier_advance() {
                return None;
            }
        }
    }

    /// Delivers the earliest *batch* of events: every entry due at the
    /// globally minimal timestamp, across all shards, merged into global
    /// stamp order. Appends `(shard, payload)` pairs to `out` in delivery
    /// order and returns the batch timestamp, or `None` when the whole set
    /// has drained. Windows advance and mailboxes flush at barriers
    /// internally, exactly as in [`ShardSet::next_event`].
    ///
    /// A sequence of `next_batch` calls delivers the same event stream as
    /// a sequence of `next_event` calls, provided the caller (a) calls
    /// [`ShardSet::set_current`] with each event's shard tag before
    /// executing it — `next_batch` cannot track the executing shard across
    /// a multi-shard batch the way `next_event` does — and (b) routes each
    /// event's follow-ups before consuming the next *batch*. Mid-batch
    /// routing cannot reach inside the already-cut batch: every route
    /// carries a fresh global stamp above every drained entry's, so a
    /// same-time follow-up sorts after the whole batch (it is delivered by
    /// a later `next_batch` at the same timestamp, exactly where per-event
    /// delivery would place it), and a cross-shard route is due at least
    /// one lookahead later anyway. The k-way head scan, per-queue
    /// bookkeeping, window checks and the engine's own per-batch work are
    /// amortized over the entire timestamp instead of a single shard's
    /// run.
    pub fn next_batch(&mut self, out: &mut Vec<(u32, E)>) -> Option<Cycle> {
        loop {
            // Globally minimal head time and the number of shards due then.
            let mut t_min: Option<Cycle> = None;
            let mut due = 0usize;
            for head in &self.heads {
                if let Some((t, _)) = *head {
                    match t_min {
                        Some(m) if t > m => {}
                        Some(m) if t == m => due += 1,
                        _ => {
                            t_min = Some(t);
                            due = 1;
                        }
                    }
                }
            }
            if let Some(t) = t_min {
                if self.direct || t < self.window_end {
                    let mut n = 0usize;
                    let mut remaining = due;
                    self.scratch.clear();
                    for s in 0..self.queues.len() {
                        if self.heads[s].is_some_and(|(ht, _)| ht == t) {
                            n += self.queues[s].drain_time(t, s as u32, &mut self.scratch);
                            self.heads[s] = self.queues[s].peek();
                            remaining -= 1;
                            if remaining == 0 {
                                break;
                            }
                        }
                    }
                    // Per-shard runs are stamp-sorted; a single-shard batch
                    // (the common case) is already in global order.
                    if due > 1 {
                        self.scratch.sort_unstable_by_key(|&(stamp, _, _)| stamp);
                    }
                    out.extend(self.scratch.drain(..).map(|(_, s, p)| (s, p)));
                    self.now = t;
                    self.stats.delivered += n as u64;
                    self.stats.batches += 1;
                    return Some(t);
                }
            } else if self.direct {
                return None;
            }
            if !self.barrier_advance() {
                return None;
            }
        }
    }

    /// Declares the shard whose event the caller is about to execute, so
    /// [`ShardSet::route`] can classify follow-ups as local or cross-shard.
    /// Required between the events of a [`ShardSet::next_batch`] batch;
    /// [`ShardSet::next_event`] maintains it automatically.
    #[inline]
    pub fn set_current(&mut self, shard: usize) {
        self.current = Some(shard);
    }

    /// Drive counters; see [`ShardStats`].
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// End-of-drive conservation check: every routed event was delivered
    /// and no queue or mailbox still holds entries.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if anything is still pending.
    pub fn drain_check(&self) {
        assert_eq!(
            self.stats.routed, self.stats.delivered,
            "shard set not drained: {} routed vs {} delivered",
            self.stats.routed, self.stats.delivered
        );
        assert!(
            self.queues.iter().all(|q| q.is_empty()),
            "shard queue not drained"
        );
        assert!(
            self.mailboxes.iter().all(|m| m.is_empty()),
            "shard mailbox not drained"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_queue_orders_by_time_then_stamp() {
        let mut q = ShardQueue::new();
        q.push(30, 5, "late");
        q.push(10, 7, "early");
        q.push(10, 2, "earlier-stamp");
        assert_eq!(q.peek(), Some((10, 2)));
        assert_eq!(q.pop(), Some((10, 2, "earlier-stamp")));
        assert_eq!(q.pop(), Some((10, 7, "early")));
        assert_eq!(q.pop(), Some((30, 5, "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shard_queue_merges_out_of_order_stamps_in_one_bucket() {
        // A barrier flush inserts a mailbox entry whose stamp predates a
        // later local push to the same cycle; the bucket must stay sorted.
        let mut q = ShardQueue::new();
        q.push(50, 9, "local");
        q.push(50, 3, "flushed");
        q.push(50, 6, "between");
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, s, p)| (s, p))
            .collect();
        assert_eq!(order, vec![(3, "flushed"), (6, "between"), (9, "local")]);
    }

    #[test]
    fn shard_queue_crosses_the_horizon() {
        let mut q = ShardQueue::new();
        let far = HORIZON as Cycle * 2 + 9;
        q.push(far, 1, "far");
        q.push(3, 2, "near");
        q.push(far, 3, "far-2");
        assert_eq!(q.pop(), Some((3, 2, "near")));
        assert_eq!(q.pop(), Some((far, 1, "far")));
        assert_eq!(q.pop(), Some((far, 3, "far-2")));
        assert!(q.is_empty());
    }

    #[test]
    fn shard_queue_overflow_migration_respects_stamps() {
        let mut q = ShardQueue::new();
        let t = HORIZON as Cycle + 40;
        q.push(t, 8, "overflow"); // beyond the initial window
        q.push(100, 9, "near");
        assert_eq!(q.pop(), Some((100, 9, "near"))); // base -> 100, t migrates
        q.push(t, 2, "direct-earlier-stamp");
        assert_eq!(q.pop(), Some((t, 2, "direct-earlier-stamp")));
        assert_eq!(q.pop(), Some((t, 8, "overflow")));
    }

    #[test]
    fn shard_set_merges_in_global_stamp_order() {
        // Seed two shards with interleaved times; delivery must follow
        // (time, stamp) globally, not per-shard.
        let mut set = ShardSet::new(2, 16);
        set.route(0, 5, "a");
        set.route(1, 5, "b");
        set.route(0, 1, "c");
        set.route(1, 0, "d");
        let mut got = Vec::new();
        while let Some((t, p, _)) = set.next_event() {
            got.push((t, p));
        }
        assert_eq!(got, vec![(0, "d"), (1, "c"), (5, "a"), (5, "b")]);
        set.drain_check();
    }

    #[test]
    fn cross_shard_messages_wait_for_the_barrier() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, "seed");
        let (t, _, s) = set.next_event().unwrap();
        assert_eq!((t, s), (0, 0));
        // Executing shard 0's event: send shard 1 a message one lookahead
        // out. It parks in the mailbox (stats.cross) and still delivers.
        set.route(1, 10, "hop");
        assert_eq!(set.stats().cross, 1);
        let (t, p, s) = set.next_event().unwrap();
        assert_eq!((t, p, s), (10, "hop", 1));
        assert!(set.next_event().is_none());
        set.drain_check();
        assert!(set.stats().windows >= 2);
    }

    #[test]
    #[should_panic(expected = "conservative lookahead violated")]
    fn lookahead_violation_panics() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, "seed");
        let _ = set.next_event();
        // Due *inside* the current window [0, 10): a protocol violation.
        set.route(1, 5, "too-soon");
    }

    #[test]
    fn intra_shard_messages_bypass_the_mailbox() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, 0u32);
        let _ = set.next_event();
        // Same-shard, same-cycle scheduling is the serial engine's bread
        // and butter (retries, pre-queue promotion) and must stay legal.
        set.route(0, 0, 1u32);
        assert_eq!(set.stats().cross, 0);
        assert_eq!(set.next_event().map(|(t, p, _)| (t, p)), Some((0, 1u32)));
    }

    #[test]
    fn drain_run_respects_the_bound() {
        let mut q = ShardQueue::new();
        q.push(10, 1, "a");
        q.push(10, 3, "b");
        q.push(10, 8, "c");
        q.push(12, 9, "d");
        let mut out = Vec::new();
        // Bound at (10, 5): only stamps below 5 may leave.
        assert_eq!(q.drain_run(Some((10, 5)), &mut out), Some((10, 2)));
        assert_eq!(out, vec!["a", "b"]);
        out.clear();
        // Bound at a later time: the rest of the bucket, but never t=12.
        assert_eq!(q.drain_run(Some((11, 0)), &mut out), Some((10, 1)));
        assert_eq!(out, vec!["c"]);
        out.clear();
        assert_eq!(q.drain_run(None, &mut out), Some((12, 1)));
        assert_eq!(out, vec!["d"]);
        assert!(q.is_empty());
        assert_eq!(q.drain_run(None, &mut out), None);
    }

    #[test]
    fn drain_run_refuses_a_bound_before_the_head() {
        let mut q = ShardQueue::new();
        q.push(10, 7, "head");
        let mut out = Vec::new();
        assert_eq!(q.drain_run(Some((10, 7)), &mut out), None);
        assert_eq!(q.drain_run(Some((9, 0)), &mut out), None);
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((10, 7, "head")));
    }

    #[test]
    fn drain_run_pulls_same_time_overflow_siblings() {
        let mut q = ShardQueue::new();
        let far = HORIZON as Cycle * 2 + 11;
        q.push(far, 1, "x");
        q.push(far, 2, "y");
        q.push(far + 3, 3, "z");
        let mut out = Vec::new();
        assert_eq!(q.drain_run(None, &mut out), Some((far, 2)));
        assert_eq!(out, vec!["x", "y"]);
        out.clear();
        assert_eq!(q.drain_run(None, &mut out), Some((far + 3, 1)));
        assert_eq!(out, vec!["z"]);
    }

    #[test]
    fn next_batch_matches_next_event_on_a_random_trace() {
        // The same workload as `matches_event_queue_on_a_random_trace`,
        // driven per event and per batch; delivery streams must agree, and
        // the batched drive must route each event's follow-ups mid-batch.
        const LOOKAHEAD: Cycle = 7;
        let shard_of = |n: u32| (n % 3) as usize;
        let step = |t: Cycle, n: u32| -> Vec<(Cycle, u32)> {
            let h = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t;
            let mut out = Vec::new();
            if n < 200 {
                for (k, child) in [(5u64, n * 2 + 1), (3, n * 2 + 2)] {
                    if shard_of(child) == shard_of(n) {
                        out.push((t + (h % k), child));
                    } else {
                        out.push((t + LOOKAHEAD + (h % k), child));
                    }
                }
            }
            out
        };

        let mut per_event = ShardSet::new(3, LOOKAHEAD);
        per_event.route(shard_of(0), 0, 0u32);
        let mut event_order = Vec::new();
        while let Some((t, n, _)) = per_event.next_event() {
            event_order.push((t, n));
            for (ct, c) in step(t, n) {
                per_event.route(shard_of(c), ct, c);
            }
        }
        per_event.drain_check();

        let mut batched = ShardSet::new(3, LOOKAHEAD);
        batched.route(shard_of(0), 0, 0u32);
        let mut batch_order = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = batched.next_batch(&mut batch) {
            for (s, n) in batch.drain(..) {
                batched.set_current(s as usize);
                assert_eq!(s as usize, shard_of(n), "wrong shard tag");
                batch_order.push((t, n));
                for (ct, c) in step(t, n) {
                    batched.route(shard_of(c), ct, c);
                }
            }
        }
        batched.drain_check();

        assert_eq!(event_order, batch_order);
        let (mut a, b) = (batched.stats(), per_event.stats());
        assert!(a.batches > 0 && a.batches <= a.delivered);
        a.batches = b.batches; // only the batched drive counts batches
        assert_eq!(a, b);
    }

    #[test]
    fn direct_mode_matches_the_windowed_drive() {
        // Same spawning workload as above, driven windowed and direct; the
        // delivered streams must be identical and the direct drive must
        // never touch a mailbox or barrier.
        const LOOKAHEAD: Cycle = 7;
        let shard_of = |n: u32| (n % 3) as usize;
        let step = |t: Cycle, n: u32| -> Vec<(Cycle, u32)> {
            let h = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t;
            let mut out = Vec::new();
            if n < 200 {
                for (k, child) in [(5u64, n * 2 + 1), (3, n * 2 + 2)] {
                    if shard_of(child) == shard_of(n) {
                        out.push((t + (h % k), child));
                    } else {
                        out.push((t + LOOKAHEAD + (h % k), child));
                    }
                }
            }
            out
        };

        let mut orders: Vec<Vec<(Cycle, u32)>> = Vec::new();
        let mut stats = Vec::new();
        for set in [
            ShardSet::new(3, LOOKAHEAD),
            ShardSet::new_direct(3, LOOKAHEAD),
        ] {
            let mut set = set;
            set.route(shard_of(0), 0, 0u32);
            let mut order = Vec::new();
            let mut batch = Vec::new();
            while let Some(t) = set.next_batch(&mut batch) {
                for (s, n) in batch.drain(..) {
                    set.set_current(s as usize);
                    order.push((t, n));
                    for (ct, c) in step(t, n) {
                        set.route(shard_of(c), ct, c);
                    }
                }
            }
            set.drain_check();
            orders.push(order);
            stats.push(set.stats());
        }
        assert_eq!(orders[0], orders[1]);
        let (windowed, direct) = (stats[0], stats[1]);
        assert_eq!(direct.windows, 0, "direct drive ran a barrier");
        assert!(windowed.windows > 1);
        assert_eq!(direct.delivered, windowed.delivered);
        assert_eq!(direct.routed, windowed.routed);
        assert_eq!(direct.cross, windowed.cross);
    }

    #[test]
    #[should_panic(expected = "conservative lookahead violated")]
    fn direct_mode_still_enforces_the_lookahead() {
        let mut set = ShardSet::new_direct(2, 10);
        set.route(0, 5, "seed");
        let _ = set.next_event();
        // Due less than one lookahead past the executing cycle (5): the
        // mesh transit floor makes this arrival impossible.
        set.route(1, 14, "too-soon");
    }

    #[test]
    fn next_batch_merges_a_whole_timestamp_in_stamp_order() {
        let mut set = ShardSet::new(2, 16);
        set.route(0, 5, "a0"); // stamp 0
        set.route(1, 5, "b1"); // stamp 1
        set.route(0, 5, "a2"); // stamp 2
        set.route(1, 9, "c3"); // stamp 3, later timestamp
        let mut batch = Vec::new();
        // One batch delivers everything due at t=5, interleaved across the
        // two shards by global stamp — never the t=9 entry.
        assert_eq!(set.next_batch(&mut batch), Some(5));
        assert_eq!(batch, vec![(0, "a0"), (1, "b1"), (0, "a2")]);
        batch.clear();
        assert_eq!(set.next_batch(&mut batch), Some(9));
        assert_eq!(batch, vec![(1, "c3")]);
        batch.clear();
        assert_eq!(set.next_batch(&mut batch), None);
        assert_eq!(set.stats().batches, 2);
        set.drain_check();
    }

    #[test]
    fn same_time_followups_land_in_a_later_batch_at_the_same_time() {
        // An event executed from a batch schedules a same-shard follow-up
        // at the batch's own timestamp; it must be delivered by the next
        // `next_batch` call at that same timestamp, after the whole batch —
        // exactly where per-event delivery would place it (fresh stamp).
        let mut set = ShardSet::new_direct(2, 16);
        set.route(0, 5, 0u32);
        set.route(1, 5, 1u32);
        let mut batch = Vec::new();
        assert_eq!(set.next_batch(&mut batch), Some(5));
        assert_eq!(batch, vec![(0, 0u32), (1, 1u32)]);
        set.set_current(0);
        set.route(0, 5, 2u32); // same time, stamps after the batch
        batch.clear();
        assert_eq!(set.next_batch(&mut batch), Some(5));
        assert_eq!(batch, vec![(0, 2u32)]);
        batch.clear();
        assert_eq!(set.next_batch(&mut batch), None);
        set.drain_check();
    }

    #[test]
    fn matches_event_queue_on_a_random_trace() {
        // Replay one synthetic workload through a serial EventQueue and a
        // 3-shard ShardSet; delivery sequences must be identical. Events
        // spawn follow-ups the way engine handlers do: same-shard at any
        // future time, cross-shard at >= one lookahead.
        use crate::EventQueue;
        const LOOKAHEAD: Cycle = 7;
        let shard_of = |n: u32| (n % 3) as usize;
        let step = |t: Cycle, n: u32| -> Vec<(Cycle, u32)> {
            // A cheap deterministic pseudo-random expansion.
            let h = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t;
            let mut out = Vec::new();
            if n < 200 {
                let child = n * 2 + 1;
                if shard_of(child) == shard_of(n) {
                    out.push((t + (h % 5), child));
                } else {
                    out.push((t + LOOKAHEAD + (h % 5), child));
                }
                let child = n * 2 + 2;
                if shard_of(child) == shard_of(n) {
                    out.push((t + (h % 3), child));
                } else {
                    out.push((t + LOOKAHEAD + (h % 3), child));
                }
            }
            out
        };

        let mut serial = EventQueue::new();
        serial.push(0, 0u32);
        let mut serial_order = Vec::new();
        while let Some((t, n)) = serial.pop() {
            serial_order.push((t, n));
            for (ct, c) in step(t, n) {
                serial.push(ct, c);
            }
        }

        let mut set = ShardSet::new(3, LOOKAHEAD);
        set.route(shard_of(0), 0, 0u32);
        let mut sharded_order = Vec::new();
        while let Some((t, n, _)) = set.next_event() {
            sharded_order.push((t, n));
            for (ct, c) in step(t, n) {
                set.route(shard_of(c), ct, c);
            }
        }
        set.drain_check();

        assert_eq!(serial_order, sharded_order);
        assert!(set.stats().cross > 0, "workload never crossed shards");
        assert!(set.stats().windows > 1, "workload fit one window");
    }
}
