//! Sharded event scheduling with conservative lookahead (DESIGN.md §15).
//!
//! This module is the substrate for partitioning one simulation's event
//! population across *shards* (tile groups of the wafer) while preserving
//! the serial engine's exact `(time, sequence)` delivery order:
//!
//! * [`ShardQueue`] — a per-shard calendar queue, structurally the same
//!   ring-of-buckets design as [`crate::EventQueue`] but keyed by an
//!   explicit *global* stamp instead of a per-queue insertion counter, so
//!   entries arriving out of stamp order (mailbox flushes at window
//!   barriers) still merge into the right delivery slot.
//! * [`ShardSet`] — the lock-step window coordinator: it owns one
//!   `ShardQueue` per shard plus per-destination mailboxes, advances all
//!   shards through lookahead windows of fixed length, exchanges
//!   cross-shard messages at window barriers, and delivers events in the
//!   exact global `(time, stamp)` order.
//!
//! # The conservative-lookahead argument
//!
//! Let `L` be the minimum latency of any cross-shard message (for a wafer
//! mesh: one link traversal plus the serialization floor — see
//! `Mesh::min_transit_cycles` in `wsg-noc`). While the coordinator executes
//! events inside the window `[W, W + L)`, any cross-shard message such an
//! event emits departs at some `t >= W` and therefore arrives at
//! `t + L >= W + L` — at or beyond the window end. Messages parked in
//! mailboxes during the window can thus never be *due* inside it, so each
//! shard can exhaust its own queue up to the window end without seeing its
//! siblings' traffic; flushing mailboxes at the barrier is sufficient for
//! correctness. [`ShardSet::route`] enforces the invariant at runtime and
//! panics on any cross-shard message that would violate it.
//!
//! # Determinism
//!
//! Every event carries a global stamp assigned at routing time in execution
//! order, so within any single timestamp the stamp order equals the serial
//! engine's insertion-sequence order. [`ShardSet::next_event`] always returns the
//! globally minimal `(time, stamp)` entry over all shard heads, which makes
//! the merged delivery order — and therefore every downstream metric,
//! audit, trace and telemetry artifact — byte-identical to serial
//! execution by construction. `tests/equivalence.rs` pins this against
//! [`crate::EventQueue`] under arbitrary interleavings.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Ring width of each shard's calendar; see [`crate::EventQueue`] for the
/// power-of-two / multiple-of-64 constraints.
const HORIZON: usize = 4096;
/// Occupancy bitmap words — one bit per bucket.
const WORDS: usize = HORIZON / 64;

/// A far-future entry: `(time, stamp)`-ordered via an inverted `Ord` so a
/// max-`BinaryHeap` pops the earliest first.
#[derive(Debug)]
struct Far<E> {
    time: Cycle,
    stamp: u64,
    payload: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.stamp == other.stamp
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.stamp.cmp(&self.stamp))
    }
}

/// One shard's calendar queue: a ring of per-cycle buckets (each kept in
/// ascending stamp order) over `[base, base + HORIZON)`, with a
/// `(time, stamp)`-sorted overflow heap beyond the horizon.
///
/// Unlike [`crate::EventQueue`], entries carry an externally assigned stamp
/// and may be inserted out of stamp order (a window barrier flushes mailbox
/// entries whose stamps predate later local pushes); a binary-search insert
/// keeps each bucket sorted, degrading to an O(1) append in the common
/// monotone case.
#[derive(Debug)]
pub struct ShardQueue<E> {
    /// Per-cycle buckets, ascending by stamp; index `time % HORIZON`.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bit per bucket.
    words: [u64; WORDS],
    /// Occupancy bit per `words` entry.
    summary: u64,
    /// Start of the ring window `[base, base + HORIZON)`. Monotone.
    base: Cycle,
    /// Entries resident in the ring.
    ring_len: usize,
    /// Entries at `time >= base + HORIZON`.
    overflow: BinaryHeap<Far<E>>,
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardQueue<E> {
    /// Creates an empty shard queue with its window based at cycle 0.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(HORIZON);
        buckets.resize_with(HORIZON, VecDeque::new);
        Self {
            buckets,
            words: [0; WORDS],
            summary: 0,
            base: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn set_bit(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
        self.summary |= 1u64 << (idx / 64);
    }

    fn clear_bit(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
        if self.words[idx / 64] == 0 {
            self.summary &= !(1u64 << (idx / 64));
        }
    }

    /// First occupied bucket in cyclic scan order starting at `from` (the
    /// window base slot). `None` iff the ring is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let w0 = from / 64;
        let high = self.words[w0] & (!0u64 << (from % 64));
        if high != 0 {
            return Some(w0 * 64 + high.trailing_zeros() as usize);
        }
        if self.summary == 0 {
            return None;
        }
        let rot = self.summary.rotate_right(((w0 + 1) % WORDS) as u32);
        if rot == 0 {
            return None;
        }
        let w = (w0 + 1 + rot.trailing_zeros() as usize) % WORDS;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }

    /// Absolute time of ring bucket `idx`, given the window base slot.
    fn bucket_time(&self, idx: usize, from: usize) -> Cycle {
        self.base + ((idx + HORIZON - from) % HORIZON) as Cycle
    }

    /// Advances the window base, migrating overflow entries that came
    /// inside the window into their ring buckets.
    fn advance_base(&mut self, to: Cycle) {
        self.base = to;
        while let Some(head) = self.overflow.peek() {
            if head.time - self.base >= HORIZON as Cycle {
                break;
            }
            let entry = match self.overflow.pop() {
                Some(e) => e,
                None => unreachable!("peeked entry vanished"),
            };
            self.insert_ring(entry.time, entry.stamp, entry.payload);
        }
    }

    /// Inserts into the ring bucket for `time`, keeping the bucket sorted
    /// by stamp. Caller guarantees `base <= time < base + HORIZON`.
    fn insert_ring(&mut self, time: Cycle, stamp: u64, payload: E) {
        let idx = (time % HORIZON as Cycle) as usize;
        let bucket = &mut self.buckets[idx];
        // Common case: stamps arrive in increasing order, so the insert
        // point is the back and partition_point touches one element.
        let at = bucket.partition_point(|(s, _)| *s < stamp);
        bucket.insert(at, (stamp, payload));
        self.set_bit(idx);
        self.ring_len += 1;
    }

    /// Inserts `payload` with the given global `stamp` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is below the queue's base (the
    /// coordinator never routes into a shard's past — cross-shard arrivals
    /// land at or beyond the window end, local pushes at or beyond `now`).
    pub fn push(&mut self, time: Cycle, stamp: u64, payload: E) {
        debug_assert!(
            time >= self.base,
            "shard event routed into the past: {} < {}",
            time,
            self.base
        );
        if time >= self.base && time - self.base < HORIZON as Cycle {
            self.insert_ring(time, stamp, payload);
        } else {
            self.overflow.push(Far {
                time,
                stamp,
                payload,
            });
        }
    }

    /// The `(time, stamp)` of this shard's earliest entry, or `None` when
    /// the shard is idle. Ring entries always precede overflow entries (the
    /// overflow tier starts a full horizon past the base).
    pub fn peek(&self) -> Option<(Cycle, u64)> {
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = self.next_occupied(from)?;
            let time = self.bucket_time(idx, from);
            let stamp = self.buckets[idx].front().map(|(s, _)| *s)?;
            return Some((time, stamp));
        }
        self.overflow.peek().map(|e| (e.time, e.stamp))
    }

    /// Removes and returns the earliest `(time, stamp, payload)` entry.
    pub fn pop(&mut self) -> Option<(Cycle, u64, E)> {
        if self.ring_len > 0 {
            let from = (self.base % HORIZON as Cycle) as usize;
            let idx = match self.next_occupied(from) {
                Some(i) => i,
                None => unreachable!("ring_len > 0 with an empty occupancy bitmap"),
            };
            let time = self.bucket_time(idx, from);
            let (stamp, payload) = match self.buckets[idx].pop_front() {
                Some(e) => e,
                None => unreachable!("occupied bit over an empty bucket"),
            };
            if self.buckets[idx].is_empty() {
                self.clear_bit(idx);
            }
            self.ring_len -= 1;
            self.advance_base(time);
            return Some((time, stamp, payload));
        }
        let e = self.overflow.pop()?;
        self.advance_base(e.time);
        Some((e.time, e.stamp, e.payload))
    }

    /// Number of entries currently pending.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Counters describing one sharded drive (all deterministic: they depend
/// only on the event population, partition and lookahead, never on host
/// state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookahead windows crossed (barriers executed).
    pub windows: u64,
    /// Events delivered through the merge.
    pub delivered: u64,
    /// Events routed in (equals `delivered` after a drained run).
    pub routed: u64,
    /// Events that crossed a shard boundary (went through a mailbox).
    pub cross: u64,
}

/// The lock-step lookahead coordinator over `n` shard queues.
///
/// The drive loop is: [`ShardSet::route`] the initial event population,
/// then alternate [`ShardSet::next_event`] (deliver the globally earliest event)
/// with routing whatever the delivered event's handler scheduled. `next`
/// advances the lookahead window and flushes mailboxes at barriers
/// internally; it returns `None` only when every queue and mailbox is
/// empty.
#[derive(Debug)]
pub struct ShardSet<E> {
    queues: Vec<ShardQueue<E>>,
    /// Per-destination mailboxes holding cross-shard messages sent during
    /// the current window, in ascending stamp order.
    mailboxes: Vec<VecDeque<(Cycle, u64, E)>>,
    /// Lookahead window length: the minimum cross-shard delivery latency.
    lookahead: Cycle,
    /// Exclusive end of the current window; 0 before the first barrier.
    window_end: Cycle,
    /// The shard whose event [`ShardSet::next_event`] last delivered; `None`
    /// while seeding, when every routed event inserts directly.
    current: Option<usize>,
    /// Next global stamp.
    stamp: u64,
    stats: ShardStats,
}

impl<E> ShardSet<E> {
    /// Creates a coordinator for `shards` shards with the given `lookahead`
    /// window length.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `lookahead` is zero (a zero-length
    /// window cannot make progress).
    pub fn new(shards: usize, lookahead: Cycle) -> Self {
        assert!(shards > 0, "at least one shard required");
        assert!(lookahead > 0, "conservative lookahead must be positive");
        let mut queues = Vec::with_capacity(shards);
        queues.resize_with(shards, ShardQueue::new);
        let mut mailboxes = Vec::with_capacity(shards);
        mailboxes.resize_with(shards, VecDeque::new);
        Self {
            queues,
            mailboxes,
            lookahead,
            window_end: 0,
            current: None,
            stamp: 0,
            stats: ShardStats::default(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The lookahead window length.
    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }

    /// Routes an event for shard `dest` at absolute `time`, assigning it
    /// the next global stamp. While an event is being executed (after a
    /// [`ShardSet::next_event`]), a route to any *other* shard is a cross-shard
    /// message: it parks in `dest`'s mailbox until the window barrier.
    ///
    /// # Panics
    ///
    /// Panics if a cross-shard message is due before the current window
    /// ends — that violates the conservative-lookahead contract the window
    /// length was derived from, and silently accepting it would let a
    /// threaded drive diverge from serial order.
    pub fn route(&mut self, dest: usize, time: Cycle, payload: E) {
        let stamp = self.stamp;
        self.stamp += 1;
        self.stats.routed += 1;
        match self.current {
            Some(src) if src != dest => {
                assert!(
                    time >= self.window_end,
                    "conservative lookahead violated: shard {src} sent an event to \
                     shard {dest} due at {time}, inside the window ending at {} \
                     (lookahead {})",
                    self.window_end,
                    self.lookahead
                );
                self.stats.cross += 1;
                self.mailboxes[dest].push_back((time, stamp, payload));
            }
            _ => self.queues[dest].push(time, stamp, payload),
        }
    }

    /// Flushes every mailbox into its destination queue (the window
    /// barrier), then re-bases the window at the earliest pending event.
    /// Returns `false` when nothing is pending anywhere.
    fn barrier_advance(&mut self) -> bool {
        for (dest, mailbox) in self.mailboxes.iter_mut().enumerate() {
            while let Some((time, stamp, payload)) = mailbox.pop_front() {
                self.queues[dest].push(time, stamp, payload);
            }
        }
        let earliest = self
            .queues
            .iter()
            .filter_map(|q| q.peek())
            .map(|(t, _)| t)
            .min();
        match earliest {
            Some(start) => {
                // Empty windows are skipped entirely: the next window bases
                // at the earliest pending event rather than stepping
                // lookahead-by-lookahead through dead time.
                self.window_end = start.saturating_add(self.lookahead);
                self.stats.windows += 1;
                true
            }
            None => false,
        }
    }

    /// Delivers the globally earliest `(time, stamp)` event, advancing
    /// lookahead windows (and flushing mailboxes at their barriers) as
    /// needed. Returns `(time, payload, shard)`, or `None` when the whole
    /// set has drained.
    pub fn next_event(&mut self) -> Option<(Cycle, E, usize)> {
        loop {
            let mut best: Option<(Cycle, u64, usize)> = None;
            for (s, q) in self.queues.iter().enumerate() {
                if let Some((t, stamp)) = q.peek() {
                    let better = match best {
                        Some((bt, bs, _)) => (t, stamp) < (bt, bs),
                        None => true,
                    };
                    if better {
                        best = Some((t, stamp, s));
                    }
                }
            }
            if let Some((t, _, s)) = best {
                if t < self.window_end {
                    let (time, _stamp, payload) = match self.queues[s].pop() {
                        Some(e) => e,
                        None => unreachable!("peeked shard head vanished"),
                    };
                    self.current = Some(s);
                    self.stats.delivered += 1;
                    return Some((time, payload, s));
                }
            }
            // Earliest event at or past the window end (or only mailbox
            // traffic left): cross the barrier. Progress is guaranteed —
            // after a successful advance the earliest event is strictly
            // inside the new window (lookahead > 0).
            if !self.barrier_advance() {
                return None;
            }
        }
    }

    /// Drive counters; see [`ShardStats`].
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// End-of-drive conservation check: every routed event was delivered
    /// and no queue or mailbox still holds entries.
    ///
    /// # Panics
    ///
    /// Panics — in all build profiles — if anything is still pending.
    pub fn drain_check(&self) {
        assert_eq!(
            self.stats.routed, self.stats.delivered,
            "shard set not drained: {} routed vs {} delivered",
            self.stats.routed, self.stats.delivered
        );
        assert!(
            self.queues.iter().all(|q| q.is_empty()),
            "shard queue not drained"
        );
        assert!(
            self.mailboxes.iter().all(|m| m.is_empty()),
            "shard mailbox not drained"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_queue_orders_by_time_then_stamp() {
        let mut q = ShardQueue::new();
        q.push(30, 5, "late");
        q.push(10, 7, "early");
        q.push(10, 2, "earlier-stamp");
        assert_eq!(q.peek(), Some((10, 2)));
        assert_eq!(q.pop(), Some((10, 2, "earlier-stamp")));
        assert_eq!(q.pop(), Some((10, 7, "early")));
        assert_eq!(q.pop(), Some((30, 5, "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shard_queue_merges_out_of_order_stamps_in_one_bucket() {
        // A barrier flush inserts a mailbox entry whose stamp predates a
        // later local push to the same cycle; the bucket must stay sorted.
        let mut q = ShardQueue::new();
        q.push(50, 9, "local");
        q.push(50, 3, "flushed");
        q.push(50, 6, "between");
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, s, p)| (s, p))
            .collect();
        assert_eq!(order, vec![(3, "flushed"), (6, "between"), (9, "local")]);
    }

    #[test]
    fn shard_queue_crosses_the_horizon() {
        let mut q = ShardQueue::new();
        let far = HORIZON as Cycle * 2 + 9;
        q.push(far, 1, "far");
        q.push(3, 2, "near");
        q.push(far, 3, "far-2");
        assert_eq!(q.pop(), Some((3, 2, "near")));
        assert_eq!(q.pop(), Some((far, 1, "far")));
        assert_eq!(q.pop(), Some((far, 3, "far-2")));
        assert!(q.is_empty());
    }

    #[test]
    fn shard_queue_overflow_migration_respects_stamps() {
        let mut q = ShardQueue::new();
        let t = HORIZON as Cycle + 40;
        q.push(t, 8, "overflow"); // beyond the initial window
        q.push(100, 9, "near");
        assert_eq!(q.pop(), Some((100, 9, "near"))); // base -> 100, t migrates
        q.push(t, 2, "direct-earlier-stamp");
        assert_eq!(q.pop(), Some((t, 2, "direct-earlier-stamp")));
        assert_eq!(q.pop(), Some((t, 8, "overflow")));
    }

    #[test]
    fn shard_set_merges_in_global_stamp_order() {
        // Seed two shards with interleaved times; delivery must follow
        // (time, stamp) globally, not per-shard.
        let mut set = ShardSet::new(2, 16);
        set.route(0, 5, "a");
        set.route(1, 5, "b");
        set.route(0, 1, "c");
        set.route(1, 0, "d");
        let mut got = Vec::new();
        while let Some((t, p, _)) = set.next_event() {
            got.push((t, p));
        }
        assert_eq!(got, vec![(0, "d"), (1, "c"), (5, "a"), (5, "b")]);
        set.drain_check();
    }

    #[test]
    fn cross_shard_messages_wait_for_the_barrier() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, "seed");
        let (t, _, s) = set.next_event().unwrap();
        assert_eq!((t, s), (0, 0));
        // Executing shard 0's event: send shard 1 a message one lookahead
        // out. It parks in the mailbox (stats.cross) and still delivers.
        set.route(1, 10, "hop");
        assert_eq!(set.stats().cross, 1);
        let (t, p, s) = set.next_event().unwrap();
        assert_eq!((t, p, s), (10, "hop", 1));
        assert!(set.next_event().is_none());
        set.drain_check();
        assert!(set.stats().windows >= 2);
    }

    #[test]
    #[should_panic(expected = "conservative lookahead violated")]
    fn lookahead_violation_panics() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, "seed");
        let _ = set.next_event();
        // Due *inside* the current window [0, 10): a protocol violation.
        set.route(1, 5, "too-soon");
    }

    #[test]
    fn intra_shard_messages_bypass_the_mailbox() {
        let mut set = ShardSet::new(2, 10);
        set.route(0, 0, 0u32);
        let _ = set.next_event();
        // Same-shard, same-cycle scheduling is the serial engine's bread
        // and butter (retries, pre-queue promotion) and must stay legal.
        set.route(0, 0, 1u32);
        assert_eq!(set.stats().cross, 0);
        assert_eq!(set.next_event().map(|(t, p, _)| (t, p)), Some((0, 1u32)));
    }

    #[test]
    fn matches_event_queue_on_a_random_trace() {
        // Replay one synthetic workload through a serial EventQueue and a
        // 3-shard ShardSet; delivery sequences must be identical. Events
        // spawn follow-ups the way engine handlers do: same-shard at any
        // future time, cross-shard at >= one lookahead.
        use crate::EventQueue;
        const LOOKAHEAD: Cycle = 7;
        let shard_of = |n: u32| (n % 3) as usize;
        let step = |t: Cycle, n: u32| -> Vec<(Cycle, u32)> {
            // A cheap deterministic pseudo-random expansion.
            let h = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t;
            let mut out = Vec::new();
            if n < 200 {
                let child = n * 2 + 1;
                if shard_of(child) == shard_of(n) {
                    out.push((t + (h % 5), child));
                } else {
                    out.push((t + LOOKAHEAD + (h % 5), child));
                }
                let child = n * 2 + 2;
                if shard_of(child) == shard_of(n) {
                    out.push((t + (h % 3), child));
                } else {
                    out.push((t + LOOKAHEAD + (h % 3), child));
                }
            }
            out
        };

        let mut serial = EventQueue::new();
        serial.push(0, 0u32);
        let mut serial_order = Vec::new();
        while let Some((t, n)) = serial.pop() {
            serial_order.push((t, n));
            for (ct, c) in step(t, n) {
                serial.push(ct, c);
            }
        }

        let mut set = ShardSet::new(3, LOOKAHEAD);
        set.route(shard_of(0), 0, 0u32);
        let mut sharded_order = Vec::new();
        while let Some((t, n, _)) = set.next_event() {
            sharded_order.push((t, n));
            for (ct, c) in step(t, n) {
                set.route(shard_of(c), ct, c);
            }
        }
        set.drain_check();

        assert_eq!(serial_order, sharded_order);
        assert!(set.stats().cross > 0, "workload never crossed shards");
        assert!(set.stats().windows > 1, "workload fit one window");
    }
}
