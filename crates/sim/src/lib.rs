#![warn(missing_docs)]

//! Discrete-event simulation engine for the wafer-scale GPU simulator.
//!
//! This crate is the foundation of the HDPAT reproduction. It provides:
//!
//! * [`EventQueue`] — a generic, deterministic discrete-event queue ordered by
//!   `(cycle, sequence number)`, implemented as a two-level calendar queue
//!   (DESIGN.md §11).
//! * [`HashIndex`] — a deterministic open-addressing map from `u64` keys with
//!   a fixed seed, the sanctioned replacement for entropy-seeded std hash
//!   collections on simulator hot paths (lint rule d6).
//! * [`ServerPool`] — an analytic model of `k` identical servers with FIFO
//!   admission, used for bandwidth-style resources (HBM channels, walker
//!   pools when fine-grained queue introspection is not needed).
//! * The [`stats`] module — counters, histograms, windowed time series,
//!   latency breakdowns and reuse-distance trackers that back every figure of
//!   the paper.
//! * [`SimRng`] — a seeded, reproducible random number generator used by the
//!   workload generators.
//! * The [`pool`] module — a scoped worker pool for fanning independent,
//!   fully seeded simulations across threads without sacrificing
//!   reproducibility (results come back in input order), plus the
//!   [`pool::ShardBarrier`] lookahead barrier with panic propagation.
//! * The [`shard`] module — per-shard calendar queues and the
//!   conservative-lookahead window coordinator that delivers a partitioned
//!   event population in the exact serial `(time, stamp)` order
//!   (DESIGN.md §15).
//!
//! # Example
//!
//! ```
//! use wsg_sim::{EventQueue, Cycle};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push(10, Ev::Ping(1));
//! q.push(5, Ev::Ping(0));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (5, Ev::Ping(0)));
//! assert_eq!(q.now(), 5);
//! ```

#[cfg(feature = "audit")]
pub mod audit;
pub mod event;
pub mod index;
pub mod pool;
pub mod rng;
pub mod server;
pub mod shard;
pub mod stats;
#[cfg(feature = "telemetry")]
pub mod telemetry;
pub mod time;
#[cfg(feature = "trace")]
pub mod trace;

pub use event::EventQueue;
pub use index::HashIndex;
pub use rng::SimRng;
pub use server::ServerPool;
pub use shard::{ShardQueue, ShardSet, ShardStats};
pub use time::Cycle;
