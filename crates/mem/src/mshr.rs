//! Miss-status holding registers.

/// The outcome of registering a miss with an [`Mshr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss on this block: the caller must issue the fill request.
    Primary,
    /// A fill for this block is already outstanding; the waiter was merged.
    Secondary,
    /// All MSHR entries are occupied by other blocks: the requester must
    /// stall and retry. This back-pressure is what penalizes the
    /// TLB-with-MSHRs alternative to the redirection table in Fig 19.
    Full,
}

/// Miss-status holding registers: a bounded table of outstanding misses,
/// each holding the waiters to wake when the fill returns.
///
/// `W` is the caller's waiter token (request id, CU id, …).
///
/// The slot store is struct-of-arrays (DESIGN.md §16): block tags, live
/// flags and waiter lists are parallel planes sized from the capacity at
/// construction, and lookup is a linear scan over the contiguous tag
/// plane — MSHR files are Table-I small (4–32 entries), so the scan beats
/// any indexed structure and has no ordering surface at all (lint rules
/// d1/d6: slot order is allocation order, deterministic).
///
/// # Example
///
/// ```
/// use wsg_mem::{Mshr, MshrOutcome};
///
/// let mut m: Mshr<u32> = Mshr::new(2);
/// assert_eq!(m.register(0x1000, 1), MshrOutcome::Primary);
/// assert_eq!(m.register(0x1000, 2), MshrOutcome::Secondary);
/// assert_eq!(m.complete(0x1000), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    capacity: usize,
    targets_per_entry: usize,
    /// Block tag per slot (stale when the slot is not live).
    tags: Vec<u64>,
    /// Live flag per slot.
    live: Vec<bool>,
    /// Waiters per slot, in registration order (primary first).
    waiters: Vec<Vec<W>>,
    /// Live slot count.
    len: usize,
    stalls: u64,
    merges: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl<W> Mshr<W> {
    /// Creates MSHRs with `capacity` entries and unbounded target slots per
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_targets(capacity, usize::MAX)
    }

    /// Creates MSHRs with `capacity` entries, each holding at most
    /// `targets_per_entry` waiters (primary included). Further same-block
    /// misses are rejected as [`MshrOutcome::Full`], modelling the bounded
    /// target slots of real MSHR files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `targets_per_entry` is zero.
    pub fn with_targets(capacity: usize, targets_per_entry: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        assert!(targets_per_entry > 0, "need at least one target slot");
        Self {
            capacity,
            targets_per_entry,
            tags: vec![0; capacity],
            live: vec![false; capacity],
            waiters: std::iter::repeat_with(Vec::new).take(capacity).collect(),
            len: 0,
            stalls: 0,
            merges: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches a tracer recording registration outcomes under instance id
    /// `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this MSHR
    /// file's merge/stall/occupancy metrics under instance id `site`
    /// (optionally tagged with a wafer tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::{Counter, Gauge};
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("mshr.merges", site, tile, Counter);
            t.register("mshr.stalls", site, tile, Counter);
            t.register("mshr.occupancy", site, tile, Gauge);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current cumulative counters into the attached recorder (a
    /// no-op without one). The engine calls this at each epoch boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.merges());
                t.set(base + 1, self.stalls());
                t.set(base + 2, self.occupancy() as u64);
            });
        }
    }

    #[cfg(feature = "trace")]
    fn trace_event(&self, stage: &'static str, block: u64) {
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.instant(stage, self.trace_site, block));
        }
    }

    /// Slot currently holding `block`, if any — a scan over the tag plane.
    #[inline]
    fn find_slot(&self, block: u64) -> Option<usize> {
        (0..self.capacity).find(|&i| self.live[i] && self.tags[i] == block)
    }

    /// Registers a miss on `block` for `waiter`.
    pub fn register(&mut self, block: u64, waiter: W) -> MshrOutcome {
        if let Some(slot) = self.find_slot(block) {
            // The waiter list already includes the primary, so the entry is
            // at its target bound exactly when `len() == targets_per_entry`.
            if self.waiters[slot].len() >= self.targets_per_entry {
                self.stalls += 1;
                #[cfg(feature = "trace")]
                self.trace_event("mshr.full", block);
                return MshrOutcome::Full;
            }
            self.waiters[slot].push(waiter);
            self.merges += 1;
            #[cfg(feature = "trace")]
            self.trace_event("mshr.secondary", block);
            return MshrOutcome::Secondary;
        }
        if self.len >= self.capacity {
            self.stalls += 1;
            #[cfg(feature = "trace")]
            self.trace_event("mshr.full", block);
            return MshrOutcome::Full;
        }
        let slot = match self.live.iter().position(|l| !l) {
            Some(s) => s,
            None => unreachable!("len < capacity with no free slot"),
        };
        self.tags[slot] = block;
        self.live[slot] = true;
        self.waiters[slot].push(waiter);
        self.len += 1;
        #[cfg(feature = "trace")]
        self.trace_event("mshr.primary", block);
        MshrOutcome::Primary
    }

    /// Completes the fill for `block`, releasing its entry and returning all
    /// waiters in registration order. Returns an empty vector if the block
    /// had no entry.
    pub fn complete(&mut self, block: u64) -> Vec<W> {
        match self.find_slot(block) {
            Some(slot) => {
                self.live[slot] = false;
                self.len -= 1;
                std::mem::take(&mut self.waiters[slot])
            }
            None => Vec::new(),
        }
    }

    /// Whether a fill for `block` is outstanding.
    pub fn contains(&self, block: u64) -> bool {
        self.find_slot(block).is_some()
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.len
    }

    /// Whether all entries are occupied.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of registrations rejected because the table was full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Number of secondary misses merged into existing entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Mshr::<u32>::new(0);
    }

    #[test]
    fn primary_secondary_flow() {
        let mut m: Mshr<&str> = Mshr::new(4);
        assert_eq!(m.register(1, "a"), MshrOutcome::Primary);
        assert_eq!(m.register(1, "b"), MshrOutcome::Secondary);
        assert_eq!(m.register(2, "c"), MshrOutcome::Primary);
        assert_eq!(m.occupancy(), 2);
        assert_eq!(m.complete(1), vec!["a", "b"]);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_table_stalls_new_blocks_but_merges_existing() {
        let mut m: Mshr<u8> = Mshr::new(2);
        m.register(1, 0);
        m.register(2, 0);
        assert!(m.is_full());
        assert_eq!(m.register(3, 0), MshrOutcome::Full);
        // Secondary misses on in-flight blocks still merge when full.
        assert_eq!(m.register(1, 1), MshrOutcome::Secondary);
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn target_bound_counts_the_primary() {
        // `targets_per_entry = 2` means primary + exactly one secondary.
        let mut m: Mshr<u8> = Mshr::with_targets(4, 2);
        assert_eq!(m.register(1, 0), MshrOutcome::Primary);
        assert_eq!(m.register(1, 1), MshrOutcome::Secondary);
        assert_eq!(m.register(1, 2), MshrOutcome::Full);
        assert_eq!(m.stalls(), 1);
        assert_eq!(m.complete(1), vec![0, 1]);
    }

    #[test]
    fn complete_unknown_block_is_empty() {
        let mut m: Mshr<u8> = Mshr::new(1);
        assert!(m.complete(42).is_empty());
    }

    #[test]
    fn complete_frees_capacity() {
        let mut m: Mshr<u8> = Mshr::new(1);
        m.register(1, 0);
        assert_eq!(m.register(2, 0), MshrOutcome::Full);
        m.complete(1);
        assert_eq!(m.register(2, 0), MshrOutcome::Primary);
    }

    #[test]
    fn contains_tracks_outstanding() {
        let mut m: Mshr<u8> = Mshr::new(2);
        assert!(!m.contains(5));
        m.register(5, 0);
        assert!(m.contains(5));
        m.complete(5);
        assert!(!m.contains(5));
    }
}
