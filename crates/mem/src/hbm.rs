//! HBM stack model.

use wsg_sim::time::serialization_cycles;
use wsg_sim::{Cycle, ServerPool};

/// Parameters of one GPM's HBM stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Aggregate bandwidth in bytes per cycle (1.23 TB/s at 1 GHz →
    /// 1230 B/cycle, Table I).
    pub bytes_per_cycle: f64,
    /// Fixed access latency in cycles (row activation + transfer start).
    pub access_latency: Cycle,
    /// Number of pseudo-channels that can serve accesses in parallel.
    pub channels: usize,
}

impl HbmConfig {
    /// Table I values: 8 GB at 1.23 TB/s. The paper does not specify the
    /// fixed latency or channel count; we use HBM2-typical values
    /// (~120 cycles, 8 pseudo-channels).
    pub fn paper_baseline() -> Self {
        Self {
            capacity_bytes: 8 << 30,
            bytes_per_cycle: 1230.0,
            access_latency: 120,
            channels: 8,
        }
    }
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// A bandwidth/latency model of one HBM stack.
///
/// Accesses are admitted to `channels` parallel servers; each access
/// occupies a channel for its serialization time (bytes over the per-channel
/// bandwidth) and completes after the fixed access latency on top.
///
/// # Example
///
/// ```
/// use wsg_mem::{Hbm, HbmConfig};
///
/// let mut hbm = Hbm::new(HbmConfig {
///     capacity_bytes: 1 << 30,
///     bytes_per_cycle: 64.0,
///     access_latency: 100,
///     channels: 1,
/// });
/// // 64 B at 64 B/cycle on one channel: 1 cycle serialization + 100 latency.
/// assert_eq!(hbm.access(0, 64), 101);
/// ```
#[derive(Debug, Clone)]
pub struct Hbm {
    cfg: HbmConfig,
    channels: ServerPool,
    bytes_served: u64,
    accesses: u64,
    #[cfg(feature = "trace")]
    tracer: Option<wsg_sim::trace::TraceHandle>,
    #[cfg(feature = "trace")]
    trace_site: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<wsg_sim::telemetry::TelemetryHandle>,
    #[cfg(feature = "telemetry")]
    telemetry_base: usize,
}

impl Hbm {
    /// Creates an HBM stack.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or `channels` is zero.
    pub fn new(cfg: HbmConfig) -> Self {
        assert!(cfg.bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            channels: ServerPool::new(cfg.channels),
            cfg,
            bytes_served: 0,
            accesses: 0,
            #[cfg(feature = "trace")]
            tracer: None,
            #[cfg(feature = "trace")]
            trace_site: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            telemetry_base: 0,
        }
    }

    /// Attaches a tracer recording access service spans under instance id
    /// `site`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: wsg_sim::trace::TraceHandle, site: u64) {
        self.tracer = Some(tracer);
        self.trace_site = site;
    }

    /// Attaches the telemetry flight recorder, registering this stack's
    /// traffic metrics under instance id `site` (optionally tagged with a
    /// wafer tile for heatmap exports).
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(
        &mut self,
        telemetry: &wsg_sim::telemetry::TelemetryHandle,
        site: u64,
        tile: Option<(u16, u16)>,
    ) {
        use wsg_sim::telemetry::CounterKind::Counter;
        self.telemetry_base = telemetry.with(|t| {
            let base = t.register("hbm.accesses", site, tile, Counter);
            t.register("hbm.bytes", site, tile, Counter);
            base
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// Publishes current cumulative traffic counters into the attached
    /// recorder (a no-op without one). The engine calls this at each epoch
    /// boundary.
    #[cfg(feature = "telemetry")]
    pub fn publish_telemetry(&self) {
        if let Some(tel) = &self.telemetry {
            let base = self.telemetry_base;
            tel.with(|t| {
                t.set(base, self.accesses);
                t.set(base + 1, self.bytes_served);
            });
        }
    }

    /// The configuration.
    pub fn config(&self) -> HbmConfig {
        self.cfg
    }

    /// Admits an access of `bytes` arriving at `now`; returns its completion
    /// cycle.
    pub fn access(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let per_channel = self.cfg.bytes_per_cycle / self.cfg.channels as f64;
        let service = serialization_cycles(bytes, per_channel);
        let (_, done) = self.channels.admit(now, service);
        self.bytes_served += bytes;
        self.accesses += 1;
        let completion = done + self.cfg.access_latency;
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            tr.with(|s| s.complete("hbm.access", now, completion - now, self.trace_site, bytes));
        }
        completion
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Mean queueing delay behind busy channels, in cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        self.channels.mean_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hbm {
        Hbm::new(HbmConfig {
            capacity_bytes: 1 << 20,
            bytes_per_cycle: 64.0,
            access_latency: 100,
            channels: 2,
        })
    }

    #[test]
    fn uncontended_access_is_latency_plus_serialization() {
        let mut h = tiny();
        // Per-channel bandwidth = 32 B/cycle; 64 B -> 2 cycles.
        assert_eq!(h.access(0, 64), 102);
    }

    #[test]
    fn channels_serve_in_parallel_then_queue() {
        let mut h = tiny();
        let a = h.access(0, 64);
        let b = h.access(0, 64);
        let c = h.access(0, 64);
        assert_eq!(a, 102);
        assert_eq!(b, 102, "second channel is free");
        assert_eq!(c, 104, "third access queues behind a channel");
        assert!(h.mean_queue_delay() > 0.0);
    }

    #[test]
    fn accounting() {
        let mut h = tiny();
        h.access(0, 64);
        h.access(10, 128);
        assert_eq!(h.bytes_served(), 192);
        assert_eq!(h.accesses(), 2);
    }

    #[test]
    fn paper_baseline_values() {
        let cfg = HbmConfig::paper_baseline();
        assert_eq!(cfg.capacity_bytes, 8 << 30);
        assert_eq!(cfg.bytes_per_cycle, 1230.0);
    }

    #[test]
    fn later_arrival_does_not_wait_for_idle_channels() {
        let mut h = tiny();
        h.access(0, 64);
        let done = h.access(1000, 64);
        assert_eq!(done, 1102);
    }
}
