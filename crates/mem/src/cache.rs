//! Set-associative tag store with true-LRU replacement.

use wsg_sim::Cycle;

/// Geometry and timing of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two); use the page size for
    /// TLB-style caches keyed directly by page number with `line_bytes = 1`.
    pub line_bytes: u64,
    /// Lookup latency in cycles.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// Builds a config from a total capacity instead of a set count.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into `ways × line_bytes` sets
    /// or any parameter is zero / not a power of two where required.
    pub fn from_capacity(
        capacity_bytes: u64,
        ways: usize,
        line_bytes: u64,
        hit_latency: Cycle,
    ) -> Self {
        assert!(ways > 0 && line_bytes > 0 && capacity_bytes > 0);
        let sets = capacity_bytes / (ways as u64 * line_bytes);
        assert!(sets > 0, "capacity smaller than one set");
        Self {
            sets: sets as usize,
            ways,
            line_bytes,
            hit_latency,
        }
        .validated()
    }

    fn validated(self) -> Self {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
        self
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.lines() as u64 * self.line_bytes
    }
}

/// The result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss,
}

impl LookupResult {
    /// Whether this is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, LookupResult::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    last_used: u64,
}

/// A set-associative cache tag store with true-LRU replacement.
///
/// The store only tracks presence (tags), not data — sufficient for timing
/// simulation. Addresses are byte addresses; the line offset and set index
/// are derived from [`CacheConfig::line_bytes`] and [`CacheConfig::sets`].
///
/// # Example
///
/// ```
/// use wsg_mem::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig {
///     sets: 2, ways: 2, line_bytes: 64, hit_latency: 4,
/// });
/// assert!(!c.lookup(0x80).is_hit());
/// c.fill(0x80);
/// assert!(c.lookup(0x80).is_hit());
/// assert!(c.lookup(0xBF).is_hit()); // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let cfg = cfg.validated();
        Self {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    last_used: 0,
                };
                cfg.lines()
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.cfg.line_bytes;
        let set = (block as usize) & (self.cfg.sets - 1);
        let tag = block >> self.cfg.sets.trailing_zeros();
        (set, tag)
    }

    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.cfg.ways;
        &mut self.lines[start..start + self.cfg.ways]
    }

    /// Looks up `addr`, updating LRU state and hit/miss statistics.
    pub fn lookup(&mut self, addr: u64) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.last_used = tick;
                self.hits += 1;
                return LookupResult::Hit;
            }
        }
        self.misses += 1;
        LookupResult::Miss
    }

    /// Checks presence without touching LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let start = set * self.cfg.ways;
        self.lines[start..start + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Inserts the line containing `addr`, evicting the LRU line of its set
    /// if necessary. Returns the byte address of the evicted line (its first
    /// byte), or `None` if no eviction happened. Filling an already-present
    /// line refreshes its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let sets_bits = self.cfg.sets.trailing_zeros();
        let line_bytes = self.cfg.line_bytes;

        // Refresh if present.
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.last_used = tick;
                return None;
            }
        }
        // Prefer an invalid way.
        if let Some(line) = self.set_slice(set).iter_mut().find(|l| !l.valid) {
            *line = Line {
                tag,
                valid: true,
                last_used: tick,
            };
            return None;
        }
        // Evict the LRU way.
        let victim = match self.set_slice(set).iter_mut().min_by_key(|l| l.last_used) {
            Some(line) => line,
            // The constructor asserts `ways > 0`, so a set is never empty.
            None => unreachable!("a cache set always has at least one way"),
        };
        let evicted_block = (victim.tag << sets_bits) | set as u64;
        *victim = Line {
            tag,
            valid: true,
            last_used: tick,
        };
        self.evictions += 1;
        Some(evicted_block * line_bytes)
    }

    /// Invalidates the line containing `addr`; returns whether it was
    /// present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate in `[0, 1]`; 0 if no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        SetAssocCache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            hit_latency: 1,
        });
    }

    #[test]
    fn from_capacity_matches_table1_l2() {
        // 4 MB, 16-way, 64 B lines -> 4096 sets.
        let cfg = CacheConfig::from_capacity(4 << 20, 16, 64, 32);
        assert_eq!(cfg.sets, 4096);
        assert_eq!(cfg.capacity_bytes(), 4 << 20);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(0), LookupResult::Miss);
        c.fill(0);
        assert_eq!(c.lookup(0), LookupResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x100);
        assert!(c.lookup(0x13F).is_hit());
        assert!(!c.lookup(0x140).is_hit());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 lines: block addresses with even block number.
        let a = 0u64; // set 0
        let b = 2 * 64; // set 0
        let d = 4 * 64; // set 0
        c.fill(a);
        c.fill(b);
        c.lookup(a); // a is now MRU
        let evicted = c.fill(d).expect("set is full, must evict");
        assert_eq!(evicted, b, "b was LRU");
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn fill_refreshes_lru() {
        let mut c = tiny();
        let a = 0u64;
        let b = 2 * 64;
        let d = 4 * 64;
        c.fill(a);
        c.fill(b);
        c.fill(a); // refresh, no eviction
        assert_eq!(c.evictions(), 0);
        let evicted = c.fill(d).unwrap();
        assert_eq!(evicted, b);
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = tiny();
        c.fill(0);
        let hits_before = c.hits();
        assert!(c.probe(0));
        assert!(!c.probe(64 * 2));
        assert_eq!(c.hits(), hits_before);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn eviction_address_is_reconstructible() {
        let mut c = SetAssocCache::new(CacheConfig {
            sets: 4,
            ways: 1,
            line_bytes: 64,
            hit_latency: 1,
        });
        let addr = 7 * 4 * 64 + 2 * 64; // block 30, set 2
        c.fill(addr);
        let evicted = c.fill(addr + 4 * 64).unwrap();
        assert_eq!(evicted, addr - addr % 64);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.fill(0); // set 0
        c.fill(64); // set 1
        c.fill(2 * 64); // set 0
        c.fill(3 * 64); // set 1
        assert_eq!(c.occupancy(), 4);
        assert_eq!(c.evictions(), 0);
    }
}
