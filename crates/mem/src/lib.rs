#![warn(missing_docs)]

//! Cache and DRAM models for the wafer-scale GPU.
//!
//! Each GPM of the paper's system (Fig 1b, Table I) owns:
//!
//! * per-CU L1 vector/scalar/instruction caches (16/16/32 KB, 4-way,
//!   16 MSHRs),
//! * a shared 4 MB 16-way L2 with 64 MSHRs,
//! * an 8 GB HBM stack at 1.23 TB/s.
//!
//! This crate provides the building blocks for all of them:
//!
//! * [`SetAssocCache`] — a set-associative tag store with true-LRU
//!   replacement.
//! * [`Mshr`] — miss-status holding registers that merge secondary misses
//!   and apply back-pressure when full (the mechanism whose absence makes
//!   the redirection table preferable to a TLB in Fig 19).
//! * [`Hbm`] — a bandwidth/latency DRAM model with per-channel queueing.
//!
//! The same tag store is reused by `wsg-xlat` for TLBs (a TLB is a cache of
//! page-table entries keyed by virtual page number).

pub mod cache;
pub mod hbm;
pub mod mshr;

pub use cache::{CacheConfig, LookupResult, SetAssocCache};
pub use hbm::{Hbm, HbmConfig};
pub use mshr::{Mshr, MshrOutcome};
