//! Property-based tests for caches, MSHRs, and the HBM model, checked
//! against simple reference models.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};
use wsg_mem::{CacheConfig, Hbm, HbmConfig, Mshr, MshrOutcome, SetAssocCache};

proptest! {
    /// The cache agrees with a reference LRU model on hits and misses.
    #[test]
    fn cache_matches_reference_lru(
        sets_log in 0u32..4,
        ways in 1usize..5,
        addrs in proptest::collection::vec(0u64..4096, 1..300)
    ) {
        let sets = 1usize << sets_log;
        let line = 64u64;
        let mut cache = SetAssocCache::new(CacheConfig {
            sets,
            ways,
            line_bytes: line,
            hit_latency: 1,
        });
        // Reference: per-set LRU queues of block numbers (front = LRU).
        let mut model: HashMap<usize, VecDeque<u64>> = HashMap::new();
        for &addr in &addrs {
            let block = addr / line;
            let set = (block as usize) % sets;
            let q = model.entry(set).or_default();
            let model_hit = q.contains(&block);
            let real_hit = cache.lookup(addr).is_hit();
            prop_assert_eq!(real_hit, model_hit, "addr {:#x}", addr);
            if model_hit {
                q.retain(|&b| b != block);
                q.push_back(block);
            } else {
                cache.fill(addr);
                if q.len() == ways {
                    q.pop_front();
                }
                q.push_back(block);
            }
        }
    }

    /// Every line the model says is resident, probe() confirms, and
    /// occupancy never exceeds capacity.
    #[test]
    fn cache_occupancy_is_bounded(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
        let cfg = CacheConfig {
            sets: 8,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut cache = SetAssocCache::new(cfg);
        for &a in &addrs {
            cache.fill(a);
            prop_assert!(cache.occupancy() <= cfg.lines());
            prop_assert!(cache.probe(a), "just-filled line must be resident");
        }
    }

    /// MSHR conservation: every registered waiter comes back from exactly
    /// one complete() call.
    #[test]
    fn mshr_conserves_waiters(ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..200)) {
        let mut mshr: Mshr<usize> = Mshr::new(4);
        let mut outstanding: HashSet<u64> = HashSet::new();
        let mut registered = 0usize;
        let mut returned = 0usize;
        for (i, &(block, is_complete)) in ops.iter().enumerate() {
            if is_complete {
                let freed = mshr.complete(block);
                returned += freed.len();
                outstanding.remove(&block);
            } else {
                match mshr.register(block, i) {
                    MshrOutcome::Primary | MshrOutcome::Secondary => {
                        registered += 1;
                        outstanding.insert(block);
                    }
                    MshrOutcome::Full => {}
                }
            }
        }
        for block in outstanding {
            returned += mshr.complete(block).len();
        }
        prop_assert_eq!(registered, returned);
        prop_assert_eq!(mshr.occupancy(), 0);
    }

    /// Target-limited MSHRs never hold more waiters per entry than allowed.
    #[test]
    fn mshr_target_limit_is_enforced(targets in 1usize..6, n in 1usize..50) {
        let mut mshr: Mshr<usize> = Mshr::with_targets(2, targets);
        let mut accepted = 0usize;
        for i in 0..n {
            match mshr.register(7, i) {
                MshrOutcome::Primary | MshrOutcome::Secondary => accepted += 1,
                MshrOutcome::Full => {}
            }
        }
        prop_assert!(accepted <= targets);
        prop_assert_eq!(mshr.complete(7).len(), accepted);
    }

    /// HBM completions never precede arrival + minimum service, and
    /// bandwidth accounting is exact.
    #[test]
    fn hbm_completions_are_causal(accesses in proptest::collection::vec((0u64..10_000, 1u64..512), 1..100)) {
        let mut sorted = accesses.clone();
        sorted.sort();
        let cfg = HbmConfig {
            capacity_bytes: 1 << 30,
            bytes_per_cycle: 64.0,
            access_latency: 50,
            channels: 4,
        };
        let mut hbm = Hbm::new(cfg);
        let mut total = 0u64;
        for (arrival, bytes) in sorted {
            let done = hbm.access(arrival, bytes);
            prop_assert!(done >= arrival + cfg.access_latency);
            total += bytes;
        }
        prop_assert_eq!(hbm.bytes_served(), total);
    }
}

#[test]
fn cache_eviction_returns_reconstructible_addresses() {
    let cfg = CacheConfig {
        sets: 4,
        ways: 1,
        line_bytes: 64,
        hit_latency: 1,
    };
    let mut cache = SetAssocCache::new(cfg);
    // Fill then conflict every set; evicted addresses must match what was
    // inserted (modulo line alignment).
    for i in 0..4u64 {
        cache.fill(i * 64);
    }
    for i in 0..4u64 {
        let evicted = cache.fill((i + 4) * 64).expect("conflict must evict");
        assert_eq!(evicted, i * 64);
    }
}
