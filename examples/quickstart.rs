//! Quickstart: simulate SPMV on the paper's 7×7 wafer under the baseline
//! (centralized IOMMU) and under HDPAT, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdpat_wafer::prelude::*;

fn main() {
    let benchmark = BenchmarkId::Spmv;
    let scale = Scale::Bench;

    println!("Simulating {benchmark} on a 7x7 wafer-scale GPU (48 GPMs x 32 CUs)...\n");

    let baseline = run(&RunConfig::new(benchmark, scale, PolicyKind::Naive));
    println!("baseline (centralized IOMMU):");
    println!("  execution time      : {} cycles", baseline.total_cycles);
    println!("  remote translations : {}", baseline.remote_requests);
    println!("  IOMMU walks         : {}", baseline.iommu_walks);
    println!(
        "  mean remote RTT     : {:.0} cycles",
        baseline.remote_rtt.mean()
    );
    println!(
        "  peak IOMMU backlog  : {} requests\n",
        baseline.iommu_buffer.peak()
    );

    let hdpat = run(&RunConfig::new(benchmark, scale, PolicyKind::hdpat()));
    println!("HDPAT (concentric caching + redirection + proactive delivery):");
    println!("  execution time      : {} cycles", hdpat.total_cycles);
    println!("  IOMMU walks         : {}", hdpat.iommu_walks);
    println!(
        "  mean remote RTT     : {:.0} cycles",
        hdpat.remote_rtt.mean()
    );
    println!(
        "  translations offloaded from the IOMMU: {:.1}%",
        hdpat.offload_fraction() * 100.0
    );
    println!("  resolution breakdown: {}", hdpat.resolution);
    println!(
        "  prefetch accuracy   : {:.1}%\n",
        hdpat.prefetch_accuracy() * 100.0
    );

    println!(
        "HDPAT speedup over baseline: {:.2}x",
        hdpat.speedup_vs(&baseline)
    );
}
