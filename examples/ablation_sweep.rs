//! Ablation sweep: run every benchmark under every translation policy and
//! print the speedup matrix (the combined content of Figs 14 and 15).
//!
//! ```text
//! cargo run --release --example ablation_sweep            # Bench scale
//! WSG_SCALE=unit cargo run --release --example ablation_sweep
//! ```

use hdpat_wafer::prelude::*;
use hdpat_wafer::sim::stats::geo_mean;
use std::time::Instant;

fn main() {
    let scale = match std::env::var("WSG_SCALE").as_deref() {
        Ok("unit") => Scale::Unit,
        _ => Scale::Bench,
    };
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("route", PolicyKind::RouteCache { caching_layers: 2 }),
        ("conc", PolicyKind::Concentric { caching_layers: 2 }),
        ("dist", PolicyKind::Distributed),
        ("clust", PolicyKind::Hdpat(HdpatConfig::peer_caching_only())),
        (
            "redir",
            PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        ),
        ("pref", PolicyKind::Hdpat(HdpatConfig::with_prefetch_only())),
        ("hdpat", PolicyKind::hdpat()),
        ("transfw", PolicyKind::TransFw),
        ("valk", PolicyKind::Valkyrie),
        ("barre", PolicyKind::Barre),
    ];

    // lint:allow(wallclock): host-side progress timing only; never feeds the
    // model.
    let t0 = Instant::now();
    print!("{:6}", "bench");
    for (n, _) in &policies {
        print!(" {n:>8}");
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for b in BenchmarkId::all() {
        let base = run(&RunConfig::new(b, scale, PolicyKind::Naive));
        print!("{:6}", b.to_string());
        for (i, (_, p)) in policies.iter().enumerate() {
            let s = run(&RunConfig::new(b, scale, *p)).speedup_vs(&base);
            cols[i].push(s);
            print!(" {s:>8.2}");
        }
        println!();
    }
    print!("{:6}", "GMEAN");
    for c in &cols {
        print!(" {:>8.2}", geo_mean(c).expect("speedups are positive"));
    }
    println!("\n\ncompleted in {:.1?}", t0.elapsed());
}
