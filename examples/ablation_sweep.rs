//! Ablation sweep: run every benchmark under every translation policy and
//! print the speedup matrix (the combined content of Figs 14 and 15).
//!
//! ```text
//! cargo run --release --example ablation_sweep            # Bench scale
//! WSG_SCALE=unit cargo run --release --example ablation_sweep
//! WSG_JOBS=4 cargo run --release --example ablation_sweep # 4 sweep workers
//! ```

use hdpat_wafer::prelude::*;
use hdpat_wafer::sim::stats::geo_mean;
use std::time::Instant;

fn main() {
    let scale = match std::env::var("WSG_SCALE").as_deref() {
        Ok("unit") => Scale::Unit,
        _ => Scale::Bench,
    };
    let ctx = match std::env::var("WSG_JOBS").ok().and_then(|j| j.parse().ok()) {
        Some(jobs) => SweepCtx::new(jobs),
        None => SweepCtx::auto(),
    };
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("route", PolicyKind::RouteCache { caching_layers: 2 }),
        ("conc", PolicyKind::Concentric { caching_layers: 2 }),
        ("dist", PolicyKind::Distributed),
        ("clust", PolicyKind::Hdpat(HdpatConfig::peer_caching_only())),
        (
            "redir",
            PolicyKind::Hdpat(HdpatConfig::with_redirection_only()),
        ),
        ("pref", PolicyKind::Hdpat(HdpatConfig::with_prefetch_only())),
        ("hdpat", PolicyKind::hdpat()),
        ("transfw", PolicyKind::TransFw),
        ("valk", PolicyKind::Valkyrie),
        ("barre", PolicyKind::Barre),
    ];

    // lint:allow(wallclock): host-side progress timing only; never feeds the
    // model.
    let t0 = Instant::now();
    // One batched sweep: per benchmark, the Naive baseline followed by every
    // policy variant. Results come back in input order regardless of worker
    // count, so the printed matrix is byte-identical for any WSG_JOBS.
    let points: Vec<RunConfig> = BenchmarkId::all()
        .into_iter()
        .flat_map(|b| {
            std::iter::once(RunConfig::new(b, scale, PolicyKind::Naive)).chain(
                policies
                    .iter()
                    .map(move |(_, p)| RunConfig::new(b, scale, *p)),
            )
        })
        .collect();
    let results = ctx.sweep(&points);

    print!("{:6}", "bench");
    for (n, _) in &policies {
        print!(" {n:>8}");
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let stride = policies.len() + 1;
    for (b, row) in BenchmarkId::all().into_iter().zip(results.chunks(stride)) {
        let base = &row[0];
        print!("{:6}", b.to_string());
        for (i, m) in row[1..].iter().enumerate() {
            let s = m.speedup_vs(base);
            cols[i].push(s);
            print!(" {s:>8.2}");
        }
        println!();
    }
    print!("{:6}", "GMEAN");
    for c in &cols {
        print!(" {:>8.2}", geo_mean(c).expect("speedups are positive"));
    }
    let (hits, misses) = ctx.cache_stats();
    println!(
        "\n\ncompleted in {:.1?} ({misses} simulations, {hits} cache hits, {} workers)",
        t0.elapsed(),
        ctx.jobs()
    );
}
