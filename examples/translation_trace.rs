//! Translation-behaviour deep dive for one benchmark: IOMMU latency
//! breakdown (Fig 3), buffer pressure (Fig 4), per-GPM position imbalance
//! (Fig 5), reuse statistics (Figs 6-7), and spatial locality (Fig 8).
//!
//! ```text
//! cargo run --release --example translation_trace [BENCH]
//! ```
//!
//! `BENCH` is a Table II abbreviation (default SPMV).

use hdpat_wafer::prelude::*;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "SPMV".into());
    let benchmark = BenchmarkId::all()
        .into_iter()
        .find(|b| b.info().abbr.eq_ignore_ascii_case(&arg))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark `{arg}`; expected a Table II abbreviation");
            std::process::exit(2);
        });

    println!("== {benchmark}: baseline translation behaviour ==\n");
    let m = run(&RunConfig::new(benchmark, Scale::Bench, PolicyKind::Naive));

    println!(
        "execution: {} cycles, {} memory ops",
        m.total_cycles, m.ops_completed
    );
    println!(
        "translations: {} local, {} remote primaries (+{} coalesced)",
        m.local_translations, m.remote_requests, m.remote_coalesced
    );
    println!("cuckoo false positives: {}\n", m.cuckoo_false_positives);

    println!("IOMMU latency breakdown (Fig 3): {}", m.iommu_latency);
    println!(
        "IOMMU buffer pressure (Fig 4): peak {} queued requests",
        m.iommu_buffer.peak()
    );

    // Fig 5: execution time by ring.
    let layout = WaferLayout::paper_7x7();
    println!("\nGPM finish time by ring (Fig 5):");
    for ring in 1..=layout.max_layer() {
        let ids = layout.ring_gpms(ring);
        let mean: u64 =
            ids.iter().map(|&id| m.gpm_finish[id as usize]).sum::<u64>() / ids.len() as u64;
        println!(
            "  ring {ring}: mean finish {mean} cycles ({} GPMs)",
            ids.len()
        );
    }

    // Figs 6-7: translation reuse at the IOMMU.
    let counts = m.translation_count_histogram();
    println!("\nper-VPN IOMMU translation counts (Fig 6):");
    println!("  distinct pages: {}", counts.count());
    println!(
        "  translated more than once: {:.1}%",
        counts.fraction_above_one() * 100.0
    );
    let reuse = m.iommu_reuse.reuse_histogram();
    println!(
        "  reuse distances (Fig 7): {} repeats, mean {:.0}, max {}",
        reuse.count(),
        reuse.mean(),
        reuse.max()
    );

    // Fig 8: spatial locality.
    println!("\nconsecutive-request VPN distance (Fig 8):");
    for d in [1u64, 2, 4, 8] {
        println!(
            "  within {d} page(s): {:.1}%",
            m.vpn_delta.fraction_at_most(d) * 100.0
        );
    }

    println!("\n== with HDPAT ==\n");
    let hd = run(&RunConfig::new(
        benchmark,
        Scale::Bench,
        PolicyKind::hdpat(),
    ));
    println!(
        "execution: {} cycles ({:.2}x)",
        hd.total_cycles,
        hd.speedup_vs(&m)
    );
    println!("resolution (Fig 16): {}", hd.resolution);
    println!(
        "round-trip time (Fig 17): {:.0} -> {:.0} cycles ({:.0}% saved)",
        m.remote_rtt.mean(),
        hd.remote_rtt.mean(),
        (1.0 - hd.remote_rtt.mean() / m.remote_rtt.mean().max(1.0)) * 100.0
    );
    println!(
        "extra NoC traffic: {:.2}%",
        (hd.noc_bytes as f64 / m.noc_bytes.max(1) as f64 - 1.0) * 100.0
    );
}
