//! Defining a custom workload against the public API: a halo-exchange
//! stencil where each workgroup sweeps its own tile and reads one line of
//! halo from each neighbouring tile — a pattern not in the Table II suite.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use hdpat_wafer::gpu::{AddressSpace, MemoryOp, SystemConfig, WorkgroupTrace};
use hdpat_wafer::prelude::*;

const LINE: u64 = 64;

/// Builds one workgroup's trace: stream the tile, touch the left/right halo
/// lines every few steps.
fn stencil_wg(
    space: &AddressSpace,
    buf: &hdpat_wafer::gpu::Buffer,
    wg: u64,
    wg_count: u64,
) -> WorkgroupTrace {
    let ps = space.page_size();
    let len = buf.len_bytes(ps);
    let chunk = (len / wg_count).max(LINE) & !(LINE - 1);
    let start = (wg * chunk) % len;
    let at = |off: u64| (buf.base_addr(ps) + off % len) & !(LINE - 1);
    let mut ops = Vec::new();
    for i in 0..48u64 {
        let off = start + (i * LINE) % chunk;
        ops.push(MemoryOp::read(at(off), 16));
        if i % 8 == 0 {
            // Halo reads from the neighbouring tiles (likely remote pages).
            ops.push(MemoryOp::read(at(start + chunk + i), 8));
            ops.push(MemoryOp::read(at(start.wrapping_sub(LINE)), 8));
        }
        if i % 2 == 1 {
            ops.push(MemoryOp::write(at(off), 8));
        }
    }
    WorkgroupTrace::new(ops)
}

fn main() {
    let system = SystemConfig::paper_baseline();
    let gpms = system.gpm_count() as u32;

    // Allocate the grid in a fresh address space (block-partitioned over the
    // wafer, as the paper's runtime does).
    let mut space = AddressSpace::new(system.page_size, gpms);
    let grid = space.alloc("stencil_grid", 4096);

    let wg_count = 1536u64;
    let traces: Vec<WorkgroupTrace> = (0..wg_count)
        .map(|wg| stencil_wg(&space, &grid, wg, wg_count))
        .collect();

    println!(
        "custom stencil workload: {wg_count} workgroups over {} pages\n",
        grid.pages
    );

    let baseline = Simulation::with_traces(
        system.clone(),
        PolicyKind::Naive,
        space.clone(),
        traces.clone(),
    )
    .run();
    let hdpat = Simulation::with_traces(system, PolicyKind::hdpat(), space, traces).run();

    println!(
        "baseline: {} cycles, {} IOMMU walks",
        baseline.total_cycles, baseline.iommu_walks
    );
    println!(
        "HDPAT   : {} cycles, {} IOMMU walks",
        hdpat.total_cycles, hdpat.iommu_walks
    );
    println!("speedup : {:.2}x", hdpat.speedup_vs(&baseline));
    println!("offload : {:.1}%", hdpat.offload_fraction() * 100.0);
}
