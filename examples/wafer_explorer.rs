//! Wafer design-space exploration: how HDPAT's benefit scales with wafer
//! dimensions and with the number of concentric caching layers.
//!
//! ```text
//! cargo run --release --example wafer_explorer
//! ```

use hdpat_wafer::noc::Coord;
use hdpat_wafer::prelude::*;

fn wafer(w: u16, h: u16) -> SystemConfig {
    SystemConfig {
        layout: WaferLayout::new(w, h, Coord::new(w / 2, h / 2)),
        ..SystemConfig::paper_baseline()
    }
}

fn main() {
    let benchmark = BenchmarkId::Spmv;
    let scale = Scale::Unit;

    println!("== wafer-size sweep ({benchmark}, HDPAT vs baseline) ==\n");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>9}",
        "wafer", "GPMs", "base cycles", "hdpat cycles", "speedup"
    );
    for (w, h) in [(5u16, 5u16), (7, 7), (9, 9), (7, 12)] {
        let sys = wafer(w, h);
        let base =
            run(&RunConfig::new(benchmark, scale, PolicyKind::Naive).with_system(sys.clone()));
        let hd = run(&RunConfig::new(benchmark, scale, PolicyKind::hdpat()).with_system(sys));
        println!(
            "{:>8} {:>6} {:>12} {:>12} {:>8.2}x",
            format!("{w}x{h}"),
            w as usize * h as usize - 1,
            base.total_cycles,
            hd.total_cycles,
            hd.speedup_vs(&base)
        );
    }

    println!("\n== caching-layer sweep (7x7 wafer) ==\n");
    println!(
        "{:>3} {:>12} {:>9} {:>9}",
        "C", "cycles", "speedup", "offload"
    );
    let base = run(&RunConfig::new(benchmark, scale, PolicyKind::Naive));
    for c in 1..=3u32 {
        let policy = PolicyKind::Hdpat(HdpatConfig {
            caching_layers: c,
            ..HdpatConfig::paper_default()
        });
        let m = run(&RunConfig::new(benchmark, scale, policy));
        println!(
            "{c:>3} {:>12} {:>8.2}x {:>8.1}%",
            m.total_cycles,
            m.speedup_vs(&base),
            m.offload_fraction() * 100.0
        );
    }
}
