#!/usr/bin/env bash
# CI gate for the HDPAT reproduction. Ordered cheapest-first so fast failures
# come fast: formatting, clippy (plain and with the audit feature), the
# determinism lint pass (DESIGN.md, "Determinism & audit policy"), then the
# tier-1 build + tests and the full workspace suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo clippy (audit feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit -q -- -D warnings

echo "== determinism lint (cargo run -p xtask -- lint)"
cargo run -p xtask -q -- lint

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "CI green."
