#!/usr/bin/env bash
# CI gate for the HDPAT reproduction. Ordered cheapest-first so fast failures
# come fast: formatting, clippy (plain, each of the audit/trace/telemetry
# features, and all three combined), the determinism/shard-safety lint pass
# with its JSON artifact plus the shard-safety report drift gate (DESIGN.md
# §8.1/§13), rustdoc (warnings denied) + doctests, then the tier-1 build +
# tests, the full workspace suite, the trace determinism gate (DESIGN.md §10),
# the telemetry determinism gates (DESIGN.md §12: observational parity plus
# timeline/heatmap artifacts byte-identical across --jobs), the
# EXPERIMENTS.md drift gate (DESIGN.md §9), and the perf-trajectory gate
# (DESIGN.md §11): fig14 must stay byte-identical to the pre-PR-4 golden run
# while the hot-loop rework keeps its measured speedup on record.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo clippy (audit feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit -q -- -D warnings

echo "== cargo clippy (trace feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features trace -q -- -D warnings

echo "== cargo clippy (telemetry feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features telemetry -q -- -D warnings

echo "== cargo clippy (audit+trace+telemetry combined, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit,trace,telemetry -q -- -D warnings

echo "== determinism/shard-safety lint (cargo run -p xtask -- lint --json)"
mkdir -p target/ci
cargo run -p xtask -q -- lint --json > target/ci/lint.json
# The JSON artifact must agree with the exit status: zero diagnostics.
grep -q '"violations": 0,' target/ci/lint.json

echo "== shard-safety report drift gate (xtask analyze --check)"
cargo run -p xtask -q -- analyze --check

echo "== rustdoc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== doctests"
cargo test --workspace --doc -q

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "== trace determinism gate (tests/trace_determinism.rs)"
cargo test --features trace --test trace_determinism -q

echo "== telemetry determinism gate (tests/telemetry_determinism.rs)"
cargo test --features telemetry --test telemetry_determinism -q

echo "== trace on/off run parity (hdpat-sim run output byte-identical)"
mkdir -p target/ci
cargo build --release -q -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_plain.txt
cargo build --release -q --features trace -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_traced.txt
cmp target/ci/run_plain.txt target/ci/run_traced.txt

echo "== telemetry on/off run parity (hdpat-sim run output byte-identical)"
cargo build --release -q --features telemetry -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_telemetry.txt
cmp target/ci/run_plain.txt target/ci/run_telemetry.txt

echo "== telemetry artifacts: 3 benchmarks x 2 policies, --jobs 1 vs --jobs 4"
for b in SPMV KM RELU; do
  for p in naive hdpat; do
    ./target/release/hdpat-sim timeline "$b" --policy "$p" --scale unit \
        --jobs 1 --out "target/ci/tl_${b}_${p}_j1.csv" 2> /dev/null
    ./target/release/hdpat-sim timeline "$b" --policy "$p" --scale unit \
        --jobs 4 --out "target/ci/tl_${b}_${p}_j4.csv" 2> /dev/null
    cmp "target/ci/tl_${b}_${p}_j1.csv" "target/ci/tl_${b}_${p}_j4.csv"
    # Non-empty means more than the CSV header line.
    test "$(wc -l < "target/ci/tl_${b}_${p}_j1.csv")" -gt 1
    ./target/release/hdpat-sim heatmap "$b" --policy "$p" --scale unit \
        --jobs 1 --out "target/ci/hm_${b}_${p}_j1.csv" 2> /dev/null
    ./target/release/hdpat-sim heatmap "$b" --policy "$p" --scale unit \
        --jobs 4 --out "target/ci/hm_${b}_${p}_j4.csv" 2> /dev/null
    cmp "target/ci/hm_${b}_${p}_j1.csv" "target/ci/hm_${b}_${p}_j4.csv"
    test "$(wc -l < "target/ci/hm_${b}_${p}_j1.csv")" -gt 1
  done
done

# Leave the default (feature-off) binary in place for the drift gate below.
cargo build --release -q -p wsg-bench

echo "== EXPERIMENTS.md drift gate (regen-experiments --check)"
cargo run --release -q -p wsg-bench --bin hdpat-sim -- regen-experiments --scale bench --check

echo "== perf-trajectory gate (fig14 vs pre-PR-4 golden, perf artifact)"
./target/release/hdpat-sim figure fig14 --scale bench \
    --perf-out target/ci/BENCH_PR4_fig14.json > target/ci/fig14.txt
cmp tests/golden/fig14_bench.txt target/ci/fig14.txt
cat target/ci/BENCH_PR4_fig14.json

echo "CI green."
