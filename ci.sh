#!/usr/bin/env bash
# CI gate for the HDPAT reproduction. Ordered cheapest-first so fast failures
# come fast: formatting, clippy (plain, each of the audit/trace/telemetry
# features, and all three combined), the determinism/shard-safety lint pass
# with its JSON artifact plus the shard-safety report drift gate (DESIGN.md
# §8.1/§13), rustdoc (warnings denied) + doctests, then the tier-1 build +
# tests, the full workspace suite, the trace determinism gate (DESIGN.md §10),
# the telemetry determinism gates (DESIGN.md §12: observational parity plus
# timeline/heatmap artifacts byte-identical across --jobs), the
# EXPERIMENTS.md and PROTOCOL.md drift gates (DESIGN.md §9, §14), the serve
# lane (DESIGN.md §14: batch and socket replays of the fig14 request mix must
# digest byte-identically, with the warm pass answered entirely from the
# persistent run cache, plus cross-process cache reuse by `figure fig14`),
# the ops lane (a daemon with --ops-log/--metrics-out must produce a
# byte-identical replay digest, a reconciling metrics snapshot, and a
# complete request-lifecycle log), and the perf-trajectory gate (DESIGN.md §11/§16): fig14 must stay
# byte-identical to the pre-PR-4 golden run, and its measured serial events/s
# must stay within 10% of the committed BENCH_PR9.json trajectory point.
# `./ci.sh pgo` runs the opt-in profile-guided-optimization lane instead
# (see below).
set -euo pipefail
cd "$(dirname "$0")"

# Opt-in PGO lane (DESIGN.md §16): `./ci.sh pgo` builds the bench binary
# with -Cprofile-generate, trains it on the fig14 bench sweep (golden-
# checked, so the training run is also a correctness run), merges the raw
# profiles with llvm-profdata, rebuilds with -Cprofile-use, and re-checks
# the golden plus emits a perf artifact. It needs an llvm-profdata matching
# the active rustc's LLVM (rustup's llvm-tools component, or
# WSG_LLVM_PROFDATA=/path/to/llvm-profdata); an older system LLVM cannot
# read the instrumented binary's .profraw format and fails the merge — the
# lane diagnoses that instead of silently passing.
if [[ "${1:-}" == "pgo" ]]; then
  mkdir -p target/ci
  profdata="${WSG_LLVM_PROFDATA:-}"
  if [[ -z "$profdata" ]]; then
    sysroot="$(rustc --print sysroot)"
    for cand in "$sysroot"/lib/rustlib/*/bin/llvm-profdata; do
      [[ -x "$cand" ]] && profdata="$cand" && break
    done
  fi
  if [[ -z "$profdata" ]]; then
    profdata="$(command -v llvm-profdata || true)"
  fi
  if [[ -z "$profdata" ]]; then
    echo "pgo: no llvm-profdata found (install rustup's llvm-tools or set WSG_LLVM_PROFDATA)" >&2
    exit 2
  fi
  echo "== pgo: instrumented build (-Cprofile-generate)"
  profdir="$PWD/target/pgo-profiles"
  rm -rf "$profdir"
  RUSTFLAGS="-Cprofile-generate=$profdir" cargo build --release -q -p wsg-bench
  echo "== pgo: training run (fig14 bench sweep, golden-checked)"
  ./target/release/hdpat-sim figure fig14 --scale bench --no-cache \
      > target/ci/fig14_pgo_train.txt
  cmp tests/golden/fig14_bench.txt target/ci/fig14_pgo_train.txt
  echo "== pgo: merging profiles with $profdata"
  if ! "$profdata" merge -o "$profdir/merged.profdata" "$profdir"; then
    echo "pgo: $profdata cannot read this rustc's .profraw format;" >&2
    echo "pgo: use the llvm-profdata matching rustc's LLVM (rustup component add llvm-tools)" >&2
    exit 2
  fi
  echo "== pgo: optimized rebuild (-Cprofile-use) + golden re-check"
  RUSTFLAGS="-Cprofile-use=$profdir/merged.profdata" cargo build --release -q -p wsg-bench
  ./target/release/hdpat-sim figure fig14 --scale bench --no-cache \
      --perf-out target/ci/BENCH_PGO.json > target/ci/fig14_pgo.txt
  cmp tests/golden/fig14_bench.txt target/ci/fig14_pgo.txt
  cat target/ci/BENCH_PGO.json
  # Leave the default (uninstrumented) binary in place.
  cargo build --release -q -p wsg-bench
  echo "PGO lane green."
  exit 0
fi

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo clippy (audit feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit -q -- -D warnings

echo "== cargo clippy (trace feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features trace -q -- -D warnings

echo "== cargo clippy (telemetry feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features telemetry -q -- -D warnings

echo "== cargo clippy (selfprof feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features selfprof -q -- -D warnings

echo "== cargo clippy (audit+trace+telemetry+selfprof combined, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit,trace,telemetry,selfprof -q -- -D warnings

echo "== determinism/shard-safety lint (cargo run -p xtask -- lint --json)"
mkdir -p target/ci
cargo run -p xtask -q -- lint --json > target/ci/lint.json
# The JSON artifact must agree with the exit status: zero diagnostics.
grep -q '"violations": 0,' target/ci/lint.json

echo "== shard-safety report drift gate (xtask analyze --check)"
cargo run -p xtask -q -- analyze --check

echo "== rustdoc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== doctests"
cargo test --workspace --doc -q

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "== trace determinism gate (tests/trace_determinism.rs)"
cargo test --features trace --test trace_determinism -q

echo "== telemetry determinism gate (tests/telemetry_determinism.rs)"
cargo test --features telemetry --test telemetry_determinism -q

echo "== sharded equivalence gate (tests/equivalence.rs, per feature set)"
cargo test --release --test equivalence -q
cargo test --release --features audit --test equivalence -q
cargo test --release --features trace --test equivalence -q
cargo test --release --features telemetry --test equivalence -q

echo "== trace on/off run parity (hdpat-sim run output byte-identical)"
mkdir -p target/ci
cargo build --release -q -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_plain.txt
cargo build --release -q --features trace -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_traced.txt
cmp target/ci/run_plain.txt target/ci/run_traced.txt

echo "== selfprof on/off run parity (hdpat-sim run output byte-identical)"
cargo build --release -q --features selfprof -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_selfprof.txt
cmp target/ci/run_plain.txt target/ci/run_selfprof.txt

echo "== telemetry on/off run parity (hdpat-sim run output byte-identical)"
# Last parity build on purpose: the artifact lane below drives this binary's
# timeline/heatmap subcommands, which need the telemetry feature compiled in.
cargo build --release -q --features telemetry -p wsg-bench
./target/release/hdpat-sim run KM hdpat --scale unit --seed 7 > target/ci/run_telemetry.txt
cmp target/ci/run_plain.txt target/ci/run_telemetry.txt

echo "== telemetry artifacts: 3 benchmarks x 2 policies, --jobs 1 vs --jobs 4"
for b in SPMV KM RELU; do
  for p in naive hdpat; do
    ./target/release/hdpat-sim timeline "$b" --policy "$p" --scale unit \
        --jobs 1 --out "target/ci/tl_${b}_${p}_j1.csv" 2> /dev/null
    ./target/release/hdpat-sim timeline "$b" --policy "$p" --scale unit \
        --jobs 4 --out "target/ci/tl_${b}_${p}_j4.csv" 2> /dev/null
    cmp "target/ci/tl_${b}_${p}_j1.csv" "target/ci/tl_${b}_${p}_j4.csv"
    # Non-empty means more than the CSV header line.
    test "$(wc -l < "target/ci/tl_${b}_${p}_j1.csv")" -gt 1
    ./target/release/hdpat-sim heatmap "$b" --policy "$p" --scale unit \
        --jobs 1 --out "target/ci/hm_${b}_${p}_j1.csv" 2> /dev/null
    ./target/release/hdpat-sim heatmap "$b" --policy "$p" --scale unit \
        --jobs 4 --out "target/ci/hm_${b}_${p}_j4.csv" 2> /dev/null
    cmp "target/ci/hm_${b}_${p}_j1.csv" "target/ci/hm_${b}_${p}_j4.csv"
    test "$(wc -l < "target/ci/hm_${b}_${p}_j1.csv")" -gt 1
  done
done

# Leave the default (feature-off) binary in place for the drift gate below.
cargo build --release -q -p wsg-bench

echo "== EXPERIMENTS.md drift gate (regen-experiments --check)"
cargo run --release -q -p wsg-bench --bin hdpat-sim -- regen-experiments --scale bench --check

echo "== PROTOCOL.md drift gate (regen-protocol --check)"
./target/release/hdpat-sim regen-protocol --check

echo "== serve lane: batch vs socket replay over the persistent cache (DESIGN.md §14)"
rm -rf target/ci/servecache target/ci/hdpat-ci.sock
./target/release/hdpat-sim emit-mix fig14 --scale unit --out target/ci/fig14_mix.ndjson
# Cold in-process replay: populates the content-addressed store and writes
# the reference digest.
./target/release/hdpat-sim replay target/ci/fig14_mix.ndjson \
    --cache-dir target/ci/servecache --jobs 4 \
    --out target/ci/replay_batch.txt --stats-out target/ci/replay_batch_stats.json
# Warm replay through a real daemon on the same store; --shutdown drains and
# stops it over the protocol.
./target/release/hdpat-sim serve --socket target/ci/hdpat-ci.sock --jobs 4 \
    --cache-dir target/ci/servecache 2> target/ci/serve.log &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do [ -S target/ci/hdpat-ci.sock ] && break; sleep 0.1; done
./target/release/hdpat-sim replay target/ci/fig14_mix.ndjson \
    --socket target/ci/hdpat-ci.sock --shutdown \
    --out target/ci/replay_socket.txt --stats-out target/ci/replay_socket_stats.json
wait "$SERVE_PID"
# The digest must not depend on transport or cache state...
cmp target/ci/replay_batch.txt target/ci/replay_socket.txt
# ...and the warm run must be answered entirely from the persistent store.
grep -q '"disk": 70' target/ci/replay_socket_stats.json
grep -q '"simulated": 0' target/ci/replay_socket_stats.json

echo "== cross-process run-cache reuse (figure fig14 from the daemon's store)"
./target/release/hdpat-sim figure fig14 --scale unit > target/ci/fig14_unit_ref.txt
./target/release/hdpat-sim figure fig14 --scale unit --cache-dir target/ci/servecache \
    > target/ci/fig14_unit_cached.txt 2> target/ci/fig14_unit_cached.log
cmp target/ci/fig14_unit_ref.txt target/ci/fig14_unit_cached.txt
grep -q '0 simulation(s) executed, 0 cache hit(s), 70 disk hit(s)' target/ci/fig14_unit_cached.log

echo "== ops lane: observability on, replay digest byte-identical (ops log + metrics)"
rm -f target/ci/hdpat-ops.sock target/ci/ops.jsonl target/ci/metrics.json
./target/release/hdpat-sim serve --socket target/ci/hdpat-ops.sock --jobs 4 \
    --cache-dir target/ci/servecache \
    --ops-log target/ci/ops.jsonl --metrics-out target/ci/metrics.json \
    2> target/ci/serve_ops.log &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S target/ci/hdpat-ops.sock ] && break; sleep 0.1; done
./target/release/hdpat-sim replay target/ci/fig14_mix.ndjson \
    --socket target/ci/hdpat-ops.sock --shutdown \
    --out target/ci/replay_ops.txt --stats-out target/ci/replay_ops_stats.json
wait "$SERVE_PID"
# Observability must not change a byte of the deterministic digest...
cmp target/ci/replay_batch.txt target/ci/replay_ops.txt
# ...the warm run still answers entirely from the persistent store...
grep -q '"disk": 70' target/ci/replay_ops_stats.json
# ...the final metrics snapshot is schema-tagged and reconciles: every
# submit accounted for, all of them attributed to the disk tier...
grep -q '"type":"metrics"' target/ci/metrics.json
grep -q '"schema":1' target/ci/metrics.json
grep -q '"submitted":70' target/ci/metrics.json
grep -q '"completed":70' target/ci/metrics.json
grep -q '"disk":{"count":70' target/ci/metrics.json
# ...and the ops log carries one enqueue/schedule/complete per request.
test "$(grep -c '"ev":"enqueue"' target/ci/ops.jsonl)" -eq 70
test "$(grep -c '"ev":"schedule"' target/ci/ops.jsonl)" -eq 70
test "$(grep -c '"ev":"complete"' target/ci/ops.jsonl)" -eq 70

echo "== metrics wire op (stdio daemon)"
printf '{"op":"metrics"}\n' | ./target/release/hdpat-sim serve --stdio --jobs 1 \
    --cache-dir target/ci/servecache 2> /dev/null > target/ci/metrics_op.json
grep -q '"type":"metrics"' target/ci/metrics_op.json

echo "== perf-trajectory gate (fig14 vs pre-PR-4 golden, -10% events/s floor)"
./target/release/hdpat-sim figure fig14 --scale bench --no-cache \
    --perf-out target/ci/BENCH_PR9_serial.json > target/ci/fig14.txt
cmp tests/golden/fig14_bench.txt target/ci/fig14.txt
grep -q '"schema": 2' target/ci/BENCH_PR9_serial.json
cat target/ci/BENCH_PR9_serial.json
# Regression gate: the fresh serial events/s must stay within 10% of the
# committed trajectory point (BENCH_PR9.json `serial` block). Machine noise
# on the bench sweep is ~±5%, so a 10% floor only trips on real regressions.
fresh="$(sed -n 's/.*"events_per_sec": \([0-9]*\).*/\1/p' target/ci/BENCH_PR9_serial.json)"
base="$(sed -n '/"serial"/,/}/s/.*"events_per_sec": \([0-9]*\).*/\1/p' BENCH_PR9.json)"
floor=$((base * 9 / 10))
echo "fig14 serial: ${fresh} events/s (committed ${base}, floor ${floor})"
test "$fresh" -ge "$floor"

echo "== sharded-drive gate (fig14 --shards 4 byte-identical per feature set, DESIGN.md §15)"
# The plain (feature-off) binary is still in place from the lanes above.
./target/release/hdpat-sim figure fig14 --scale bench --no-cache --shards 4 \
    --perf-out target/ci/BENCH_PR9_sharded.json > target/ci/fig14_shards4.txt
cmp tests/golden/fig14_bench.txt target/ci/fig14_shards4.txt
grep -q '"shards": 4' target/ci/BENCH_PR9_sharded.json
cat target/ci/BENCH_PR9_sharded.json
for feat in audit trace telemetry; do
  cargo build --release -q -p wsg-bench --features "$feat"
  ./target/release/hdpat-sim figure fig14 --scale bench --no-cache --shards 4 \
      > "target/ci/fig14_shards4_${feat}.txt"
  cmp tests/golden/fig14_bench.txt "target/ci/fig14_shards4_${feat}.txt"
done
# Leave the default binary in place again.
cargo build --release -q -p wsg-bench

echo "CI green."
