#!/usr/bin/env bash
# CI gate for the HDPAT reproduction. Ordered cheapest-first so fast failures
# come fast: formatting, clippy (plain and with the audit feature), the
# determinism lint pass (DESIGN.md, "Determinism & audit policy"), rustdoc
# (warnings denied) + doctests, then the tier-1 build + tests, the full
# workspace suite, and the EXPERIMENTS.md drift gate (DESIGN.md §9).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo clippy (audit feature, -D warnings)"
cargo clippy -p hdpat-wafer --all-targets --features audit -q -- -D warnings

echo "== determinism lint (cargo run -p xtask -- lint)"
cargo run -p xtask -q -- lint

echo "== rustdoc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== doctests"
cargo test --workspace --doc -q

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== workspace tests"
cargo test --workspace -q

echo "== EXPERIMENTS.md drift gate (regen-experiments --check)"
cargo run --release -q -p wsg-bench --bin hdpat-sim -- regen-experiments --scale bench --check

echo "CI green."
