#![warn(missing_docs)]

//! # HDPAT — Hierarchical Distributed Page Address Translation for
//! Wafer-Scale GPUs
//!
//! A from-scratch Rust reproduction of the HPCA 2026 paper *HDPAT:
//! Hierarchical Distributed Page Address Translation for Wafer-Scale GPUs*,
//! including the full wafer-scale GPU simulator it is evaluated on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`hdpat`] — the paper's contribution: HDPAT's concentric caching,
//!   clustering, rotation, redirection table and proactive delivery; every
//!   baseline policy; the full-system discrete-event simulator and the
//!   experiment runner.
//! * [`sim`] (`wsg-sim`) — the discrete-event engine and statistics toolkit.
//! * [`noc`] (`wsg-noc`) — the 2-D mesh interconnect model.
//! * [`mem`] (`wsg-mem`) — caches, MSHRs, HBM.
//! * [`xlat`] (`wsg-xlat`) — TLBs, cuckoo filter, page tables, walkers,
//!   redirection table.
//! * [`gpu`] (`wsg-gpu`) — wafer layout, GPU presets, CU issue model,
//!   address-space placement.
//! * [`workloads`] (`wsg-workloads`) — the 14 Table II access-pattern
//!   generators.
//!
//! # Quickstart
//!
//! ```
//! use hdpat_wafer::prelude::*;
//!
//! let baseline = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::Naive));
//! let hdpat = run(&RunConfig::new(BenchmarkId::Spmv, Scale::Unit, PolicyKind::hdpat()));
//! println!("HDPAT speedup: {:.2}x", hdpat.speedup_vs(&baseline));
//! # assert!(hdpat.speedup_vs(&baseline) > 0.5);
//! ```

pub use hdpat;
pub use wsg_gpu as gpu;
pub use wsg_mem as mem;
pub use wsg_noc as noc;
pub use wsg_sim as sim;
pub use wsg_workloads as workloads;
pub use wsg_xlat as xlat;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    #[cfg(feature = "telemetry")]
    pub use hdpat::experiments::run_telemetry;
    #[cfg(all(feature = "telemetry", feature = "trace"))]
    pub use hdpat::experiments::run_telemetry_traced;
    #[cfg(feature = "trace")]
    pub use hdpat::experiments::run_traced;
    pub use hdpat::experiments::{
        run, run_all, run_with_baseline, run_with_shards, RunCache, RunConfig, SweepCtx,
    };
    pub use hdpat::policy::{HdpatConfig, PolicyKind};
    pub use hdpat::{Metrics, Resolution, Simulation};
    pub use wsg_gpu::{GpuPreset, SystemConfig, WaferLayout};
    pub use wsg_workloads::{BenchmarkId, Scale};
    pub use wsg_xlat::PageSize;
}
